//! Classic Sparse Vector Technique (the correct variant catalogued by Lyu et
//! al., the paper's [31]) — the baseline of §7.3.
//!
//! Given a stream of sensitivity-1 queries and a public threshold `T`, adds
//! `Lap(1/ε₁)` to the threshold once, `Lap(ck/ε₂)` to each query
//! (`c` = 2 general, 1 monotone), answers `⊤`/`⊥` by comparing, and stops
//! after `k` `⊤`s. Total cost `ε = ε₁ + ε₂` regardless of how many `⊥`s are
//! emitted — answering below-threshold queries is free.

use super::{optimal_threshold_share, SvOutput};
use crate::answers::QueryAnswers;
use crate::draw::{DrawProvider, ScratchDraws, SourceDraws};
use crate::error::{require_epsilon, require_fraction, MechanismError};
use crate::scratch::SvtScratch;
use free_gap_alignment::{AlignedMechanism, NoiseSource, NoiseTape, SamplingSource};
use rand::rngs::StdRng;
use rand::Rng;

/// Resumable state of one streaming SVT run: the noisy threshold, the
/// hoisted per-query noise scale, and the `⊤`-answer count.
///
/// Created by [`ClassicSparseVector::stream_open`] /
/// [`SparseVectorWithGap::stream_open`](super::SparseVectorWithGap::stream_open)
/// and advanced one query at a time with `stream_feed` — the shape a
/// long-lived server needs for analyst sessions whose query stream spans
/// many requests. The state is plain data (no borrow of the RNG or
/// scratch), so it can live across calls while each call reconstructs the
/// [`ScratchDraws`] provider over the session's persistent `rng`/`scratch`
/// pair.
#[derive(Debug, Clone, Copy)]
pub struct SvtStreamState {
    noisy_threshold: f64,
    query_scale: f64,
    answered: usize,
    k: usize,
}

impl SvtStreamState {
    /// Number of `⊤` answers emitted so far.
    pub fn answered(&self) -> usize {
        self.answered
    }

    /// True once the `k`-th `⊤` has been answered; further feeds return
    /// `None` without observing the query.
    pub fn is_halted(&self) -> bool {
        self.answered >= self.k
    }

    /// The answer cap `k` of the mechanism that opened the stream.
    pub fn k(&self) -> usize {
        self.k
    }
}

/// Classic SVT (no gap release).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassicSparseVector {
    k: usize,
    epsilon: f64,
    threshold: f64,
    threshold_share: f64,
    monotonic: bool,
}

impl ClassicSparseVector {
    /// Creates the mechanism: find up to `k` queries above `threshold` with
    /// total budget `epsilon`, using the Lyu-et-al optimal budget split.
    pub fn new(
        k: usize,
        epsilon: f64,
        threshold: f64,
        monotonic: bool,
    ) -> Result<Self, MechanismError> {
        if k == 0 {
            return Err(MechanismError::InvalidK {
                k,
                requirement: "k must be at least 1",
            });
        }
        Ok(Self {
            k,
            epsilon: require_epsilon(epsilon)?,
            threshold,
            threshold_share: optimal_threshold_share(k, monotonic),
            monotonic,
        })
    }

    /// Overrides the threshold/query budget split (`θ ∈ (0,1)` is the
    /// threshold's share).
    pub fn with_threshold_share(mut self, share: f64) -> Result<Self, MechanismError> {
        self.threshold_share = require_fraction("threshold_share", share)?;
        Ok(self)
    }

    /// The answer cap `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The public threshold `T`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The total privacy budget `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Threshold-noise budget `ε₁ = θε`.
    pub fn epsilon1(&self) -> f64 {
        self.threshold_share * self.epsilon
    }

    /// Query-noise budget `ε₂ = (1-θ)ε`.
    pub fn epsilon2(&self) -> f64 {
        (1.0 - self.threshold_share) * self.epsilon
    }

    /// Laplace scale of the threshold noise, `1/ε₁`.
    pub fn threshold_scale(&self) -> f64 {
        1.0 / self.epsilon1()
    }

    /// Laplace scale of each query's noise, `ck/ε₂`.
    pub fn query_scale(&self) -> f64 {
        let c = if self.monotonic { 1.0 } else { 2.0 };
        c * self.k as f64 / self.epsilon2()
    }

    /// The single copy of the SVT decision loop, generic over the
    /// [`DrawProvider`] noise comes through. Shared by the classic and
    /// gap-releasing variants (`release_gaps` controls whether above answers
    /// carry the noisy gap or a placeholder `0.0`), by the materialized and
    /// streaming entry points, and by every execution path — the variants
    /// cannot silently diverge (the Chen–Machanavajjhala hazard).
    ///
    /// Writes into `out`, reusing its buffer; the stop condition is checked
    /// *before* pulling the next query, so once the k-th ⊤ is answered no
    /// further query is ever observed.
    pub(crate) fn run_core<P: DrawProvider, I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        provider: &mut P,
        release_gaps: bool,
        out: &mut SvOutput,
    ) {
        provider.begin();
        let mut queries = queries.into_iter();
        // One decision per query draw: pre-size from the provider's
        // consumption prediction (capped by the stream's own upper bound
        // when it knows one) to skip the realloc chain on long streams.
        let capacity = provider
            .predicted_draws()
            .min(queries.size_hint().1.unwrap_or(usize::MAX));
        let mut state = self.stream_state_core(provider);
        out.above.clear();
        out.above.reserve(capacity);
        while !state.is_halted() {
            let Some(q) = queries.next() else { break };
            if let Some(decision) = self.stream_step_core(&mut state, q, provider, release_gaps) {
                out.above.push(decision);
            }
        }
    }

    /// Draws the threshold noise and builds the resumable stream state.
    /// The caller must have called `provider.begin()` already (this is the
    /// first draw of a run); the public entry is
    /// [`stream_open`](Self::stream_open).
    pub(crate) fn stream_state_core<P: DrawProvider>(&self, provider: &mut P) -> SvtStreamState {
        SvtStreamState {
            noisy_threshold: self.threshold + provider.next(self.threshold_scale()),
            query_scale: self.query_scale(),
            answered: 0,
            k: self.k,
        }
    }

    /// One step of the SVT decision loop — the single copy
    /// [`run_core`](Self::run_core) and the resumable
    /// [`stream_feed`](Self::stream_feed) both execute. Returns `None` once
    /// the run has halted (the query is *not* observed in that case),
    /// otherwise `Some(decision)`: `Some(gap-or-0.0)` for `⊤`, `None` for
    /// `⊥`.
    #[inline]
    pub(crate) fn stream_step_core<P: DrawProvider>(
        &self,
        state: &mut SvtStreamState,
        q: f64,
        provider: &mut P,
        release_gaps: bool,
    ) -> Option<Option<f64>> {
        if state.is_halted() {
            return None;
        }
        let noisy = q + provider.next(state.query_scale);
        Some(if noisy >= state.noisy_threshold {
            state.answered += 1;
            Some(if release_gaps {
                noisy - state.noisy_threshold
            } else {
                0.0
            })
        } else {
            None
        })
    }

    /// Opens a resumable streaming run: starts a fresh noise tape on
    /// `scratch` and draws the threshold noise from `rng`. Feed the
    /// returned state one query at a time with
    /// [`stream_feed`](Self::stream_feed) — in any batching across any
    /// number of calls, the decisions are bit-identical to one
    /// [`run_streaming_with_scratch`](Self::run_streaming_with_scratch)
    /// call over the concatenated stream on the same RNG, provided the
    /// same `rng`/`scratch` pair keeps serving this stream until it halts
    /// (the scratch's buffered lookahead is part of the tape, so the pair
    /// must not be lent to another run in between).
    pub fn stream_open<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        scratch: &mut SvtScratch,
    ) -> SvtStreamState {
        let mut provider = ScratchDraws::new(scratch, rng);
        provider.begin();
        self.stream_state_core(&mut provider)
    }

    /// Feeds one query to an open stream (see
    /// [`stream_open`](Self::stream_open)): `None` once the run has halted
    /// — the query is never observed — otherwise the `⊤`/`⊥` decision
    /// (`Some(0.0)` for `⊤`; classic SVT withholds the gap).
    pub fn stream_feed<R: Rng + ?Sized>(
        &self,
        state: &mut SvtStreamState,
        query: f64,
        rng: &mut R,
        scratch: &mut SvtScratch,
    ) -> Option<Option<f64>> {
        self.stream_step_core(state, query, &mut ScratchDraws::new(scratch, rng), false)
    }

    /// Materialized dyn-source entry: [`run_core`](Self::run_core) through
    /// the [`SourceDraws`] adapter.
    pub(crate) fn run_impl(
        &self,
        answers: &QueryAnswers,
        source: &mut dyn NoiseSource,
        release_gaps: bool,
    ) -> SvOutput {
        let mut out = SvOutput { above: Vec::new() };
        self.run_core(
            answers.values().iter().copied(),
            &mut SourceDraws::new(source),
            release_gaps,
            &mut out,
        );
        out
    }

    /// Runs with a plain RNG.
    pub fn run(&self, answers: &QueryAnswers, rng: &mut StdRng) -> SvOutput {
        let mut source = SamplingSource::new(rng);
        self.run_impl(answers, &mut source, false)
    }

    /// Scratch-path entry shared by the classic and gap-releasing variants:
    /// [`run_core`](Self::run_core) through [`ScratchDraws`] (blocked
    /// unit-Laplace buffer, monomorphic RNG), writing into `out`.
    pub(crate) fn run_scratch_core<R: Rng + ?Sized, I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        rng: &mut R,
        scratch: &mut SvtScratch,
        release_gaps: bool,
        out: &mut SvOutput,
    ) {
        self.run_core(
            queries,
            &mut ScratchDraws::new(scratch, rng),
            release_gaps,
            out,
        );
    }

    /// Batched fast path without gap release; see [`crate::scratch`].
    /// Output is bit-identical to [`run`](Self::run) on the same RNG stream.
    pub fn run_with_scratch<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut SvtScratch,
    ) -> SvOutput {
        let mut out = SvOutput { above: Vec::new() };
        self.run_with_scratch_into(answers, rng, scratch, &mut out);
        out
    }

    /// Allocation-free twin of [`run_with_scratch`](Self::run_with_scratch):
    /// writes into `out`, reusing its buffer across runs.
    pub fn run_with_scratch_into<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut SvtScratch,
        out: &mut SvOutput,
    ) {
        self.run_scratch_core(answers.values().iter().copied(), rng, scratch, false, out);
    }

    /// Streaming twin of [`run`](Self::run): consumes `queries` lazily,
    /// answering each as it is pulled, and stops pulling the moment the
    /// `k`-th `⊤` is answered — queries after the halt are never observed.
    /// Output is bit-identical to [`run`](Self::run) on the same RNG stream
    /// and the same query sequence.
    pub fn run_streaming<I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        rng: &mut StdRng,
    ) -> SvOutput {
        let mut source = SamplingSource::new(rng);
        let mut out = SvOutput { above: Vec::new() };
        self.run_core(queries, &mut SourceDraws::new(&mut source), false, &mut out);
        out
    }

    /// Streaming twin of [`run_with_scratch`](Self::run_with_scratch); same
    /// laziness contract as [`run_streaming`](Self::run_streaming). The
    /// scratch may buffer *noise* ahead of the stream (see
    /// [`crate::scratch`]), but never query answers.
    pub fn run_streaming_with_scratch<R: Rng + ?Sized, I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        rng: &mut R,
        scratch: &mut SvtScratch,
    ) -> SvOutput {
        let mut out = SvOutput { above: Vec::new() };
        self.run_scratch_core(queries, rng, scratch, false, &mut out);
        out
    }

    /// Allocation-free twin of
    /// [`run_streaming_with_scratch`](Self::run_streaming_with_scratch).
    pub fn run_streaming_with_scratch_into<R: Rng + ?Sized, I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        rng: &mut R,
        scratch: &mut SvtScratch,
        out: &mut SvOutput,
    ) {
        self.run_scratch_core(queries, rng, scratch, false, out);
    }

    /// Builds the SVT alignment shared by the classic and gap variants:
    /// threshold noise up by 1 (or 0 in the favorable monotone direction),
    /// each `⊤` query's noise shifted to keep clearing the higher threshold.
    pub(crate) fn align_impl(
        &self,
        input: &QueryAnswers,
        neighbor: &QueryAnswers,
        tape: &NoiseTape,
        output: &SvOutput,
    ) -> NoiseTape {
        let q = input.values();
        let qp = neighbor.values();
        // Footnote 6: when all queries shrink (qᵢ >= q'ᵢ) on a monotone
        // workload, the threshold can stay put and winners shift by qᵢ - q'ᵢ.
        let favorable = self.monotonic && q.iter().zip(qp).all(|(a, b)| a >= b);
        let threshold_shift = if favorable { 0.0 } else { 1.0 };
        tape.aligned_by(|draw_idx, _| {
            if draw_idx == 0 {
                threshold_shift
            } else {
                let qi = draw_idx - 1; // draw i+1 belongs to query i
                match output.above.get(qi) {
                    Some(Some(_)) => threshold_shift + q[qi] - qp[qi],
                    _ => 0.0,
                }
            }
        })
    }
}

impl AlignedMechanism for ClassicSparseVector {
    type Input = QueryAnswers;
    type Output = SvOutput;

    fn run(&self, input: &QueryAnswers, source: &mut dyn NoiseSource) -> SvOutput {
        self.run_impl(input, source, false)
    }

    fn align(
        &self,
        input: &QueryAnswers,
        neighbor: &QueryAnswers,
        tape: &NoiseTape,
        output: &SvOutput,
    ) -> NoiseTape {
        self.align_impl(input, neighbor, tape, output)
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_alignment::checker::check_alignment_many;
    use free_gap_alignment::{AdjacencyModel, Perturbation};
    use free_gap_noise::rng::rng_from_seed;

    fn workload() -> QueryAnswers {
        QueryAnswers::counting(vec![100.0, 5.0, 90.0, 4.0, 95.0, 3.0, 85.0, 2.0])
    }

    #[test]
    fn validation_and_budget_split() {
        assert!(ClassicSparseVector::new(0, 1.0, 50.0, true).is_err());
        assert!(ClassicSparseVector::new(1, 0.0, 50.0, true).is_err());
        let m = ClassicSparseVector::new(4, 1.0, 50.0, true).unwrap();
        assert!((m.epsilon1() + m.epsilon2() - 1.0).abs() < 1e-12);
        assert!(m.with_threshold_share(1.5).is_err());
        let m = m.with_threshold_share(0.5).unwrap();
        assert_eq!(m.epsilon1(), 0.5);
        // monotone scale: k/ε₂ = 4/0.5
        assert_eq!(m.query_scale(), 8.0);
    }

    #[test]
    fn stops_after_k_aboves() {
        let m = ClassicSparseVector::new(2, 100.0, 50.0, true).unwrap();
        let out = m.run(&workload(), &mut rng_from_seed(1));
        assert_eq!(out.answered(), 2);
        // With huge ε it answers the first two truly-above queries (0, 2)
        // and stops: query 4 is never processed.
        assert_eq!(out.above_indices(), vec![0, 2]);
        assert_eq!(out.processed(), 3);
    }

    #[test]
    fn below_threshold_answers_are_free_and_unlimited() {
        let lows = QueryAnswers::counting(vec![0.0; 500]);
        let m = ClassicSparseVector::new(1, 1.0, 100.0, true).unwrap();
        let out = m.run(&lows, &mut rng_from_seed(2));
        // Processes the whole stream without finding k aboves (w.h.p.).
        assert_eq!(out.processed(), 500);
        assert!(out.answered() <= 1);
    }

    #[test]
    fn alignment_within_budget_general() {
        let m = ClassicSparseVector::new(2, 0.8, 60.0, false).unwrap();
        let d = QueryAnswers::general(workload().values().to_vec());
        let mut rng = rng_from_seed(5);
        for _ in 0..40 {
            let p = Perturbation::random(AdjacencyModel::General, d.len(), &mut rng);
            let dp = d.perturbed(p.deltas());
            let max = check_alignment_many(&m, &d, &dp, 15, &mut rng).unwrap();
            assert!(max <= 0.8 + 1e-9, "cost {max}");
        }
    }

    #[test]
    fn alignment_within_budget_monotone_both_directions() {
        let m = ClassicSparseVector::new(2, 0.8, 60.0, true).unwrap();
        let d = workload();
        let mut rng = rng_from_seed(6);
        for model in [AdjacencyModel::MonotoneUp, AdjacencyModel::MonotoneDown] {
            for _ in 0..20 {
                let p = Perturbation::random(model, d.len(), &mut rng);
                let dp = d.perturbed(p.deltas());
                let max = check_alignment_many(&m, &d, &dp, 15, &mut rng).unwrap();
                assert!(max <= 0.8 + 1e-9, "cost {max} under {model:?}");
            }
        }
    }
}
