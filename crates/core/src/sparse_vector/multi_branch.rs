//! Multi-branch Adaptive Sparse Vector — the extension §6.1 sketches:
//! *"Algorithm 2 can be easily extended with multiple additional 'if'
//! branches. For simplicity we do not include such variations."* We include
//! it.
//!
//! With `m` branches the per-answer budgets form a geometric ladder
//! `ε₁/2^{m-1} < … < ε₁/2 < ε₁`: each query is first tested with the
//! cheapest (noisiest) branch against a 2-standard-deviation margin, then
//! successively more expensive branches, ending with the margin-0 baseline
//! test. A query `2^{m-1}`× … far above the threshold costs `ε₁/2^{m-1}`,
//! so the same budget can answer up to `2^{m-1}·k` such queries.
//!
//! `m = 1` recovers Sparse-Vector-with-Gap; `m = 2` is exactly Algorithm 2
//! (draw-for-draw: the test-suite checks output equality on shared noise
//! streams).
//!
//! The local alignment generalizes Eq. (3) verbatim: the threshold noise
//! moves up by one, losing branch noises stay, and the single winning
//! branch noise of each answer absorbs `1 + qᵢ - q'ᵢ`; the Definition-6
//! cost telescopes to `ε₀ + Σ (winning branch budgets) ≤ ε`.

use super::{optimal_threshold_share, Branch};
use crate::answers::QueryAnswers;
use crate::draw::{DrawProvider, ScratchDraws, SourceDraws};
use crate::error::{require_epsilon, require_fraction, MechanismError};
use crate::scratch::SvtScratch;
use free_gap_alignment::{AlignedMechanism, NoiseSource, NoiseTape, SamplingSource};
use rand::rngs::StdRng;
use rand::Rng;

/// Per-query outcome of the multi-branch mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MultiBranchOutcome {
    /// Above threshold via branch `branch` (0 = cheapest), at cost `cost`.
    Above {
        /// Branch index, `0 ..= m-1` from cheapest to baseline.
        branch: usize,
        /// The released noisy gap.
        gap: f64,
        /// Budget consumed for this answer.
        cost: f64,
    },
    /// Below threshold: free.
    Below,
}

impl MultiBranchOutcome {
    /// True for any above-threshold branch.
    pub fn is_above(&self) -> bool {
        matches!(self, MultiBranchOutcome::Above { .. })
    }
}

/// Output of [`MultiBranchAdaptiveSparseVector`].
#[derive(Debug, Clone, PartialEq)]
pub struct MultiBranchSvOutput {
    /// One outcome per processed query.
    pub outcomes: Vec<MultiBranchOutcome>,
    /// Total budget consumed (including the threshold share).
    pub spent: f64,
    /// The mechanism's budget `ε`.
    pub epsilon: f64,
}

impl MultiBranchSvOutput {
    /// Number of above-threshold answers.
    pub fn answered(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_above()).count()
    }

    /// Number of answers via branch index `b`.
    pub fn answered_via(&self, b: usize) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, MultiBranchOutcome::Above { branch, .. } if *branch == b))
            .count()
    }

    /// Indices answered above-threshold.
    pub fn above_indices(&self) -> Vec<usize> {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_above())
            .map(|(i, _)| i)
            .collect()
    }

    /// Unspent budget fraction.
    pub fn remaining_fraction(&self) -> f64 {
        ((self.epsilon - self.spent) / self.epsilon).max(0.0)
    }
}

/// Adaptive Sparse Vector with `m ≥ 1` test branches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MultiBranchAdaptiveSparseVector {
    k: usize,
    epsilon: f64,
    threshold: f64,
    theta: f64,
    monotonic: bool,
    branches: usize,
}

impl MultiBranchAdaptiveSparseVector {
    /// Maximum supported branch count; the ladder's noise scale grows as
    /// `2^{m-1}`, so deeper ladders are useless in practice and risk
    /// under/overflow in the margins.
    pub const MAX_BRANCHES: usize = 16;

    /// Creates the mechanism. `branches = 1` is Sparse-Vector-with-Gap,
    /// `branches = 2` is Algorithm 2.
    pub fn new(
        k: usize,
        epsilon: f64,
        threshold: f64,
        monotonic: bool,
        branches: usize,
    ) -> Result<Self, MechanismError> {
        if k == 0 {
            return Err(MechanismError::InvalidK {
                k,
                requirement: "k must be at least 1",
            });
        }
        if branches == 0 || branches > Self::MAX_BRANCHES {
            return Err(MechanismError::InvalidK {
                k: branches,
                requirement: "branch count must be in 1..=16",
            });
        }
        Ok(Self {
            k,
            epsilon: require_epsilon(epsilon)?,
            threshold,
            theta: optimal_threshold_share(k, monotonic),
            monotonic,
            branches,
        })
    }

    /// Overrides the budget-allocation hyperparameter `θ`.
    pub fn with_theta(mut self, theta: f64) -> Result<Self, MechanismError> {
        self.theta = require_fraction("theta", theta)?;
        Ok(self)
    }

    /// Number of branches `m`.
    pub fn branches(&self) -> usize {
        self.branches
    }

    /// The total privacy budget `ε` one run costs.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Threshold budget `ε₀ = θε`.
    pub fn epsilon0(&self) -> f64 {
        self.theta * self.epsilon
    }

    /// Baseline per-answer budget `ε₁ = (1-θ)ε/k` (the most expensive rung).
    pub fn epsilon1(&self) -> f64 {
        (1.0 - self.theta) * self.epsilon / self.k as f64
    }

    /// Budget of branch `b` (0 = cheapest): `ε₁ / 2^{m-1-b}`.
    pub fn branch_budget(&self, b: usize) -> f64 {
        // lint:allow(panic-freedom): branch index is an internal loop variable, never user input
        assert!(b < self.branches, "branch index out of range");
        self.epsilon1() / (1u64 << (self.branches - 1 - b)) as f64
    }

    /// Laplace scale of branch `b`'s noise: `c / branch_budget(b)`.
    pub fn branch_scale(&self, b: usize) -> f64 {
        let c = if self.monotonic { 1.0 } else { 2.0 };
        c / self.branch_budget(b)
    }

    /// Acceptance margin of branch `b`: 2 standard deviations of its noise
    /// for every rung except the baseline, which uses margin 0.
    pub fn branch_margin(&self, b: usize) -> f64 {
        if b + 1 == self.branches {
            0.0
        } else {
            2.0 * std::f64::consts::SQRT_2 * self.branch_scale(b)
        }
    }

    /// The single copy of the branch-ladder logic, generic over the
    /// [`DrawProvider`] noise comes through; every execution path is this
    /// one function behind a thin provider-picking entry point.
    ///
    /// Consumes `queries` lazily, pulling the next answer only while the
    /// remaining budget still covers a worst-case (`ε₁`) answer — queries
    /// after the halt are never observed. Each query consumes one whole
    /// `m`-tuple of draws ([`DrawProvider::peek_tuples`], the `peek_pairs`
    /// pattern generalized), served in blocks on buffered providers and
    /// iterated with `chunks_exact(m)`; each block's first query is pulled
    /// *before* the peek, so draw-exact providers never sample noise for a
    /// query that does not exist. All `m` draws of a tuple are consumed
    /// unconditionally (data-independent draw structure); the ladder scan
    /// stops at the first winning branch. Draw order (branch `0..m` per
    /// query, query by query) is identical on every provider.
    pub(crate) fn run_core<P: DrawProvider, I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        provider: &mut P,
        out: &mut MultiBranchSvOutput,
    ) {
        let m = self.branches;
        let eps1 = self.epsilon1();
        let budget_cap = self.epsilon * (1.0 + 1e-12);
        // Per-branch constants hoisted out of the loop. Stack arrays
        // (m <= MAX_BRANCHES) keep the fast path allocation-free apart from
        // the output vector.
        let mut scales = [0.0f64; Self::MAX_BRANCHES];
        let mut margins = [0.0f64; Self::MAX_BRANCHES];
        let mut budgets = [0.0f64; Self::MAX_BRANCHES];
        for b in 0..m {
            scales[b] = self.branch_scale(b);
            margins[b] = self.branch_margin(b);
            budgets[b] = self.branch_budget(b);
        }
        provider.begin();
        let mut queries = queries.into_iter();
        // One outcome per m-tuple of draws: pre-size from the provider's
        // consumption prediction (capped by the stream's upper bound when it
        // knows one).
        let predicted = provider.predicted_draws();
        let capacity = (predicted / m + usize::from(predicted > 0))
            .min(queries.size_hint().1.unwrap_or(usize::MAX));
        let noisy_threshold = self.threshold + provider.next(1.0 / self.epsilon0());
        out.outcomes.clear();
        out.outcomes.reserve(capacity);
        let mut spent = self.epsilon0();
        let mut done = false;
        while !done {
            // Pull the block's first query before peeking (draw-exactness).
            let Some(first) = queries.next() else { break };
            let mut pending = Some(first);
            let mut taken = 0usize;
            let tuples = provider.peek_tuples(&scales[..m]);
            for tuple in tuples.chunks_exact(m) {
                let Some(q) = pending.take().or_else(|| queries.next()) else {
                    done = true;
                    break;
                };
                taken += m;
                let mut outcome = MultiBranchOutcome::Below;
                for b in 0..m {
                    let gap = q + tuple[b] - noisy_threshold;
                    if gap >= margins[b] {
                        let cost = budgets[b];
                        spent += cost;
                        outcome = MultiBranchOutcome::Above {
                            branch: b,
                            gap,
                            cost,
                        };
                        break;
                    }
                }
                out.outcomes.push(outcome);
                if spent + eps1 > budget_cap {
                    done = true;
                    break;
                }
            }
            provider.consume(taken);
        }
        out.spent = spent;
        out.epsilon = self.epsilon;
    }

    /// Empty output shell for the core to fill.
    fn empty_output(&self) -> MultiBranchSvOutput {
        MultiBranchSvOutput {
            outcomes: Vec::new(),
            spent: 0.0,
            epsilon: self.epsilon,
        }
    }

    /// Streaming run against a noise source: `run_core`
    /// through the [`SourceDraws`] adapter.
    pub fn run_streaming_with_source<I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        source: &mut dyn NoiseSource,
    ) -> MultiBranchSvOutput {
        let mut out = self.empty_output();
        self.run_core(queries, &mut SourceDraws::new(source), &mut out);
        out
    }

    /// Runs the mechanism against a noise source.
    pub fn run_with_source(
        &self,
        answers: &QueryAnswers,
        source: &mut dyn NoiseSource,
    ) -> MultiBranchSvOutput {
        self.run_streaming_with_source(answers.values().iter().copied(), source)
    }

    /// Runs with a plain RNG.
    pub fn run(&self, answers: &QueryAnswers, rng: &mut StdRng) -> MultiBranchSvOutput {
        let mut source = SamplingSource::new(rng);
        self.run_with_source(answers, &mut source)
    }

    /// Streaming twin of [`run`](Self::run); same laziness contract as
    /// [`run_streaming_with_source`](Self::run_streaming_with_source).
    pub fn run_streaming<I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        rng: &mut StdRng,
    ) -> MultiBranchSvOutput {
        let mut source = SamplingSource::new(rng);
        self.run_streaming_with_source(queries, &mut source)
    }

    /// Streaming, batched, monomorphic fast path:
    /// `run_core` through [`ScratchDraws`]; see
    /// [`crate::scratch`]. Output is bit-identical to [`run`](Self::run) on
    /// the same RNG stream and query sequence. The scratch buffers *noise*
    /// ahead of the stream, never query answers.
    pub fn run_streaming_with_scratch<R: Rng + ?Sized, I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        rng: &mut R,
        scratch: &mut SvtScratch,
    ) -> MultiBranchSvOutput {
        let mut out = self.empty_output();
        self.run_streaming_with_scratch_into(queries, rng, scratch, &mut out);
        out
    }

    /// Allocation-free twin of
    /// [`run_streaming_with_scratch`](Self::run_streaming_with_scratch):
    /// writes into `out`, reusing its buffer across runs.
    pub fn run_streaming_with_scratch_into<R: Rng + ?Sized, I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        rng: &mut R,
        scratch: &mut SvtScratch,
        out: &mut MultiBranchSvOutput,
    ) {
        self.run_core(queries, &mut ScratchDraws::new(scratch, rng), out);
    }

    /// Batched, monomorphic fast path; see [`crate::scratch`]. Output is
    /// bit-identical to [`run`](Self::run) on the same RNG stream.
    pub fn run_with_scratch<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut SvtScratch,
    ) -> MultiBranchSvOutput {
        let mut out = self.empty_output();
        self.run_with_scratch_into(answers, rng, scratch, &mut out);
        out
    }

    /// Allocation-free twin of [`run_with_scratch`](Self::run_with_scratch).
    pub fn run_with_scratch_into<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut SvtScratch,
        out: &mut MultiBranchSvOutput,
    ) {
        self.run_streaming_with_scratch_into(answers.values().iter().copied(), rng, scratch, out);
    }
}

impl AlignedMechanism for MultiBranchAdaptiveSparseVector {
    type Input = QueryAnswers;
    type Output = MultiBranchSvOutput;

    fn run(&self, input: &QueryAnswers, source: &mut dyn NoiseSource) -> MultiBranchSvOutput {
        self.run_with_source(input, source)
    }

    fn align(
        &self,
        input: &QueryAnswers,
        neighbor: &QueryAnswers,
        tape: &NoiseTape,
        output: &MultiBranchSvOutput,
    ) -> NoiseTape {
        let q = input.values();
        let qp = neighbor.values();
        let favorable = self.monotonic && q.iter().zip(qp).all(|(a, b)| a >= b);
        let threshold_shift = if favorable { 0.0 } else { 1.0 };
        let m = self.branches;
        tape.aligned_by(|draw_idx, _| {
            if draw_idx == 0 {
                return threshold_shift;
            }
            let qi = (draw_idx - 1) / m;
            let branch = (draw_idx - 1) % m;
            match output.outcomes.get(qi) {
                Some(MultiBranchOutcome::Above { branch: wb, .. }) if *wb == branch => {
                    threshold_shift + q[qi] - qp[qi]
                }
                _ => 0.0,
            }
        })
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn outputs_match(&self, a: &MultiBranchSvOutput, b: &MultiBranchSvOutput) -> bool {
        a.outcomes.len() == b.outcomes.len()
            && a.outcomes
                .iter()
                .zip(&b.outcomes)
                .all(|(x, y)| match (x, y) {
                    (MultiBranchOutcome::Below, MultiBranchOutcome::Below) => true,
                    (
                        MultiBranchOutcome::Above {
                            branch: bx,
                            gap: gx,
                            cost: cx,
                        },
                        MultiBranchOutcome::Above {
                            branch: by,
                            gap: gy,
                            cost: cy,
                        },
                    ) => {
                        bx == by
                            && cx == cy
                            && (gx - gy).abs() <= 1e-9 * gx.abs().max(gy.abs()).max(1.0)
                    }
                    _ => false,
                })
    }
}

/// Maps a two-branch outcome onto the Algorithm-2 [`Branch`] labels.
pub fn as_algorithm2_branch(outcome: &MultiBranchOutcome) -> Option<Branch> {
    match outcome {
        MultiBranchOutcome::Above { branch: 0, .. } => Some(Branch::Top),
        MultiBranchOutcome::Above { branch: 1, .. } => Some(Branch::Middle),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparse_vector::{AdaptiveOutcome, AdaptiveSparseVector, SparseVectorWithGap};
    use free_gap_alignment::checker::check_alignment_many;
    use free_gap_alignment::{AdjacencyModel, Perturbation};
    use free_gap_noise::rng::rng_from_seed;

    fn mech(k: usize, branches: usize, threshold: f64) -> MultiBranchAdaptiveSparseVector {
        MultiBranchAdaptiveSparseVector::new(k, 0.7, threshold, true, branches).unwrap()
    }

    #[test]
    fn validation() {
        assert!(MultiBranchAdaptiveSparseVector::new(0, 0.7, 0.0, true, 2).is_err());
        assert!(MultiBranchAdaptiveSparseVector::new(1, 0.7, 0.0, true, 0).is_err());
        assert!(MultiBranchAdaptiveSparseVector::new(1, 0.7, 0.0, true, 17).is_err());
        assert!(MultiBranchAdaptiveSparseVector::new(1, 0.0, 0.0, true, 2).is_err());
    }

    #[test]
    fn budget_ladder_is_geometric() {
        let m = mech(4, 3, 10.0);
        let e1 = m.epsilon1();
        assert!((m.branch_budget(2) - e1).abs() < 1e-15);
        assert!((m.branch_budget(1) - e1 / 2.0).abs() < 1e-15);
        assert!((m.branch_budget(0) - e1 / 4.0).abs() < 1e-15);
        assert_eq!(m.branch_margin(2), 0.0);
        assert!(m.branch_margin(0) > m.branch_margin(1));
    }

    #[test]
    fn two_branches_equal_algorithm_2_on_shared_noise() {
        let answers = QueryAnswers::counting(vec![100.0, 5.0, 90.0, 60.0, 4.0, 95.0, 3.0]);
        let multi = mech(3, 2, 58.0);
        let alg2 = AdaptiveSparseVector::new(3, 0.7, 58.0, true).unwrap();
        for seed in 0..60 {
            let a = multi.run(&answers, &mut rng_from_seed(seed));
            let b = alg2.run(&answers, &mut rng_from_seed(seed));
            assert_eq!(a.outcomes.len(), b.outcomes.len(), "seed {seed}");
            for (x, y) in a.outcomes.iter().zip(&b.outcomes) {
                match (x, y) {
                    (MultiBranchOutcome::Below, AdaptiveOutcome::Below) => {}
                    (
                        MultiBranchOutcome::Above {
                            gap: gx, cost: cx, ..
                        },
                        AdaptiveOutcome::Above {
                            gap: gy, cost: cy, ..
                        },
                    ) => {
                        assert!((gx - gy).abs() < 1e-12, "seed {seed}");
                        assert!((cx - cy).abs() < 1e-15, "seed {seed}");
                        assert_eq!(
                            as_algorithm2_branch(x),
                            match y {
                                AdaptiveOutcome::Above { branch, .. } => Some(*branch),
                                AdaptiveOutcome::Below => None,
                            }
                        );
                    }
                    other => panic!("seed {seed}: divergent outcomes {other:?}"),
                }
            }
            assert!((a.spent - b.spent).abs() < 1e-12);
        }
    }

    #[test]
    fn one_branch_equals_sparse_vector_with_gap_decisions() {
        // m = 1: single margin-0 test at budget ε₁ — Wang et al.'s mechanism
        // with per-answer budget ε₁ and the same stopping rule.
        let answers = QueryAnswers::counting(vec![100.0, 5.0, 90.0, 60.0, 4.0, 95.0]);
        let multi = mech(3, 1, 58.0);
        let svg = SparseVectorWithGap::new(3, 0.7, 58.0, true).unwrap();
        // Same θ split and same noise-draw structure (1 threshold + 1 per
        // query), so identical streams give identical decisions and gaps.
        for seed in 0..60 {
            let a = multi.run(&answers, &mut rng_from_seed(seed));
            let b = svg.run(&answers, &mut rng_from_seed(seed));
            let a_gaps: Vec<(usize, f64)> = a
                .outcomes
                .iter()
                .enumerate()
                .filter_map(|(i, o)| match o {
                    MultiBranchOutcome::Above { gap, .. } => Some((i, *gap)),
                    MultiBranchOutcome::Below => None,
                })
                .collect();
            assert_eq!(a_gaps.len(), b.gaps().len(), "seed {seed}");
            for ((ia, ga), (ib, gb)) in a_gaps.iter().zip(b.gaps().iter()) {
                assert_eq!(ia, ib);
                assert!((ga - gb).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn deeper_ladders_answer_more_far_above_queries() {
        let answers = QueryAnswers::counting(vec![1e12; 400]);
        let mut rng = rng_from_seed(1);
        let mut last = 0usize;
        for m in [1usize, 2, 3, 4] {
            let out = mech(5, m, 0.0).run(&answers, &mut rng);
            let answered = out.answered();
            assert!(
                answered >= last,
                "m = {m}: answered {answered} < previous {last}"
            );
            last = answered;
        }
        // m = 4 should approach 2^3·k = 40 answers.
        assert!(last >= 30, "m = 4 answered only {last}");
    }

    #[test]
    fn spends_at_most_epsilon() {
        let answers = QueryAnswers::counting(vec![12.0; 200]);
        let m = mech(4, 3, 10.0);
        let mut rng = rng_from_seed(3);
        for _ in 0..100 {
            let out = m.run(&answers, &mut rng);
            assert!(out.spent <= 0.7 + 1e-9, "spent {}", out.spent);
        }
    }

    #[test]
    fn alignment_within_budget_all_branch_counts() {
        let d = QueryAnswers::counting(vec![100.0, 5.0, 90.0, 4.0, 95.0, 3.0]);
        let mut rng = rng_from_seed(4);
        for m in [1usize, 2, 3, 4] {
            let mech = mech(2, m, 60.0);
            for model in [AdjacencyModel::MonotoneUp, AdjacencyModel::MonotoneDown] {
                for _ in 0..15 {
                    let p = Perturbation::random(model, d.len(), &mut rng);
                    let dp = d.perturbed(p.deltas());
                    let max = check_alignment_many(&mech, &d, &dp, 10, &mut rng)
                        .unwrap_or_else(|e| panic!("m = {m}: {e}"));
                    assert!(max <= 0.7 + 1e-9, "m = {m}: cost {max}");
                }
            }
        }
    }

    #[test]
    fn alignment_general_queries() {
        let d = QueryAnswers::general(vec![100.0, 5.0, 90.0, 4.0, 95.0]);
        let mech = MultiBranchAdaptiveSparseVector::new(2, 0.8, 60.0, false, 3).unwrap();
        let mut rng = rng_from_seed(5);
        for _ in 0..30 {
            let p = Perturbation::random(AdjacencyModel::General, d.len(), &mut rng);
            let dp = d.perturbed(p.deltas());
            let max = check_alignment_many(&mech, &d, &dp, 10, &mut rng).unwrap();
            assert!(max <= 0.8 + 1e-9, "cost {max}");
        }
    }
}
