//! Output types for the Sparse Vector family.

/// Which branch of Algorithm 2 produced an above-threshold answer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Branch {
    /// The cheap, very-noisy first branch (`ξᵢ` test against `σ`): costs `ε₂`.
    Top,
    /// The baseline second branch (`ηᵢ` test against 0): costs `ε₁`.
    Middle,
}

/// Per-query outcome of the adaptive mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AdaptiveOutcome {
    /// Above threshold via the given branch, with the released noisy gap and
    /// the budget consumed for this answer.
    Above {
        /// The released noisy gap (noisy query minus noisy threshold).
        gap: f64,
        /// The branch that fired.
        branch: Branch,
        /// Budget consumed (`ε₂` for Top, `ε₁` for Middle).
        cost: f64,
    },
    /// Below threshold (`⊥`): free.
    Below,
}

impl AdaptiveOutcome {
    /// True for either above-threshold branch.
    pub fn is_above(&self) -> bool {
        matches!(self, AdaptiveOutcome::Above { .. })
    }
}

/// Output of [`super::AdaptiveSparseVector`].
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveSvOutput {
    /// One outcome per *processed* query (the mechanism may stop early when
    /// the budget cannot cover another worst-case answer).
    pub outcomes: Vec<AdaptiveOutcome>,
    /// Total budget consumed, including the threshold share `ε₀`.
    pub spent: f64,
    /// The mechanism's total budget `ε`.
    pub epsilon: f64,
}

impl AdaptiveSvOutput {
    /// Indices (into the processed prefix) answered above-threshold.
    pub fn above_indices(&self) -> Vec<usize> {
        self.outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_above())
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of above-threshold answers.
    pub fn answered(&self) -> usize {
        self.outcomes.iter().filter(|o| o.is_above()).count()
    }

    /// Number of above-threshold answers from a given branch.
    pub fn answered_via(&self, branch: Branch) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, AdaptiveOutcome::Above { branch: b, .. } if *b == branch))
            .count()
    }

    /// `(index, gap)` pairs for the above-threshold answers.
    pub fn gaps(&self) -> Vec<(usize, f64)> {
        self.outcomes
            .iter()
            .enumerate()
            .filter_map(|(i, o)| match o {
                AdaptiveOutcome::Above { gap, .. } => Some((i, *gap)),
                AdaptiveOutcome::Below => None,
            })
            .collect()
    }

    /// Budget still unspent when the mechanism stopped.
    pub fn remaining(&self) -> f64 {
        (self.epsilon - self.spent).max(0.0)
    }

    /// Unspent fraction of the budget (Figure 4's y-axis).
    pub fn remaining_fraction(&self) -> f64 {
        self.remaining() / self.epsilon
    }
}

/// Output of the non-adaptive mechanisms ([`super::ClassicSparseVector`],
/// [`super::SparseVectorWithGap`]): per-query decisions, where the gap is
/// `Some` only for the gap-releasing variant's above answers.
#[derive(Debug, Clone, PartialEq)]
pub struct SvOutput {
    /// One decision per processed query: `Some(gap)`/`Some(0.0)` above
    /// (gap-releasing / classic), `None` below.
    pub above: Vec<Option<f64>>,
}

impl SvOutput {
    /// Indices answered above-threshold.
    pub fn above_indices(&self) -> Vec<usize> {
        self.above
            .iter()
            .enumerate()
            .filter(|(_, o)| o.is_some())
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of above-threshold answers.
    pub fn answered(&self) -> usize {
        self.above.iter().filter(|o| o.is_some()).count()
    }

    /// `(index, gap)` pairs for above answers.
    pub fn gaps(&self) -> Vec<(usize, f64)> {
        self.above
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.map(|g| (i, g)))
            .collect()
    }

    /// Number of queries processed before stopping.
    pub fn processed(&self) -> usize {
        self.above.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adaptive() -> AdaptiveSvOutput {
        AdaptiveSvOutput {
            outcomes: vec![
                AdaptiveOutcome::Below,
                AdaptiveOutcome::Above {
                    gap: 3.0,
                    branch: Branch::Top,
                    cost: 0.05,
                },
                AdaptiveOutcome::Above {
                    gap: 1.0,
                    branch: Branch::Middle,
                    cost: 0.1,
                },
                AdaptiveOutcome::Below,
            ],
            spent: 0.35,
            epsilon: 0.7,
        }
    }

    #[test]
    fn adaptive_accessors() {
        let o = adaptive();
        assert_eq!(o.above_indices(), vec![1, 2]);
        assert_eq!(o.answered(), 2);
        assert_eq!(o.answered_via(Branch::Top), 1);
        assert_eq!(o.answered_via(Branch::Middle), 1);
        assert_eq!(o.gaps(), vec![(1, 3.0), (2, 1.0)]);
        assert!((o.remaining() - 0.35).abs() < 1e-15);
        assert!((o.remaining_fraction() - 0.5).abs() < 1e-15);
    }

    #[test]
    fn sv_output_accessors() {
        let o = SvOutput {
            above: vec![None, Some(2.5), None, Some(0.5)],
        };
        assert_eq!(o.above_indices(), vec![1, 3]);
        assert_eq!(o.answered(), 2);
        assert_eq!(o.gaps(), vec![(1, 2.5), (3, 0.5)]);
        assert_eq!(o.processed(), 4);
    }

    #[test]
    fn overspend_clamps_remaining() {
        let mut o = adaptive();
        o.spent = 0.8; // should never happen, but remaining() must not go negative
        assert_eq!(o.remaining(), 0.0);
    }
}
