//! Sparse-Vector-with-Gap under **discrete Laplace** noise — the
//! finite-precision counterpart of [`super::SparseVectorWithGap`].
//!
//! The §5.1 implementation-issues discussion shows the finite-precision
//! *Noisy Max* needs an `(ε, δ)` relaxation because argmax ties break the
//! alignment. Sparse Vector is different, and it is worth making the
//! contrast executable: its decisions are one-sided comparisons
//! `q̃ᵢ ≥ T̃`, and the alignment shifts both sides by the *same* lattice
//! amount, so equality cases replay identically — **no tie failure event
//! exists and the discrete mechanism satisfies pure ε-DP at any base `γ`**.
//! (Formally: on the lattice, `x < y` means `x ≤ y - γ`, which the +1
//! threshold shift preserves because all shifts are multiples of `γ` when
//! queries and threshold are.)

use super::{optimal_threshold_share, SvOutput};
use crate::answers::QueryAnswers;
use crate::draw::{DrawProvider, ScratchDraws, SourceDraws};
use crate::error::{require_epsilon, require_fraction, MechanismError};
use crate::scratch::SvtScratch;
use free_gap_alignment::{AlignedMechanism, NoiseSource, NoiseTape, SamplingSource};
use rand::rngs::StdRng;
use rand::Rng;

/// Sparse-Vector-with-Gap over an integer lattice with discrete Laplace
/// noise; pure ε-DP (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscreteSparseVectorWithGap {
    k: usize,
    epsilon: f64,
    threshold: f64,
    threshold_share: f64,
    monotonic: bool,
    gamma: f64,
}

impl DiscreteSparseVectorWithGap {
    /// Creates the mechanism with `γ = 1` (integer counts and threshold).
    pub fn new(
        k: usize,
        epsilon: f64,
        threshold: f64,
        monotonic: bool,
    ) -> Result<Self, MechanismError> {
        if k == 0 {
            return Err(MechanismError::InvalidK {
                k,
                requirement: "k must be at least 1",
            });
        }
        let gamma = 1.0;
        let t_steps = threshold / gamma;
        if (t_steps - t_steps.round()).abs() > 1e-9 {
            return Err(MechanismError::InvalidEpsilon { value: threshold });
        }
        Ok(Self {
            k,
            epsilon: require_epsilon(epsilon)?,
            threshold,
            threshold_share: optimal_threshold_share(k, monotonic),
            monotonic,
            gamma,
        })
    }

    /// Overrides the threshold/query budget split.
    pub fn with_threshold_share(mut self, share: f64) -> Result<Self, MechanismError> {
        self.threshold_share = require_fraction("threshold_share", share)?;
        Ok(self)
    }

    /// The total privacy budget `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The public threshold `T`.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Threshold-noise rate per unit: `ε₁ = θε`.
    pub fn threshold_rate(&self) -> f64 {
        self.threshold_share * self.epsilon
    }

    /// Query-noise rate per unit: `ε₂/(ck)` (`c` = 2 general, 1 monotone).
    pub fn query_rate(&self) -> f64 {
        let c = if self.monotonic { 1.0 } else { 2.0 };
        (1.0 - self.threshold_share) * self.epsilon / (c * self.k as f64)
    }

    fn validate_lattice(&self, answers: &QueryAnswers) {
        debug_assert!(
            answers.values().iter().all(|v| {
                let steps = v / self.gamma;
                (steps - steps.round()).abs() < 1e-9
            }),
            "query answers must be multiples of γ = {}",
            self.gamma
        );
    }

    /// The single copy of the discrete SVT decision loop, generic over the
    /// [`DrawProvider`] noise comes through, shared by the materialized and
    /// streaming entry points. Query noise comes in whole blocks of
    /// arity-1 tuples
    /// ([`discrete_peek_tuples`](DrawProvider::discrete_peek_tuples)):
    /// blocked providers serve a slab of geometric-tail draws per peek with
    /// the per-draw refill check and rate lookup amortized across the
    /// block, draw-exact providers exactly one draw — and each block's
    /// first query is pulled *before* the peek, so draw-exact providers
    /// never sample noise for a query that was never pulled.
    ///
    /// Consumes `queries` lazily, writing into `out`: the stop condition is
    /// checked *before* pulling the next query, so once the `k`-th `⊤` is
    /// answered no further query is ever observed.
    pub(crate) fn run_core<P: DrawProvider, I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        provider: &mut P,
        out: &mut SvOutput,
    ) {
        provider.begin();
        let mut queries = queries.into_iter();
        // One decision per query draw: pre-size from the provider's
        // consumption prediction (capped by the stream's own upper bound
        // when it knows one) to skip the realloc chain on long streams.
        let capacity = provider
            .predicted_draws()
            .min(queries.size_hint().1.unwrap_or(usize::MAX));
        let noisy_threshold =
            self.threshold + provider.discrete_next(self.threshold_rate(), self.gamma);
        let qrate = [self.query_rate()];
        out.above.clear();
        out.above.reserve(capacity);
        let mut answered = 0usize;
        let mut done = false;
        while !done && answered < self.k {
            // Pull the block's first query before peeking: a draw-exact
            // provider must not draw noise for a query that never arrives.
            let Some(first) = queries.next() else { break };
            let mut pending = Some(first);
            let mut taken = 0usize;
            let slab = provider.discrete_peek_tuples(&qrate, self.gamma);
            for &noise in slab {
                let Some(q) = pending.take().or_else(|| queries.next()) else {
                    done = true;
                    break;
                };
                debug_assert!(
                    {
                        let steps = q / self.gamma;
                        (steps - steps.round()).abs() < 1e-9
                    },
                    "query answers must be multiples of γ = {}",
                    self.gamma
                );
                taken += 1;
                let noisy = q + noise;
                if noisy >= noisy_threshold {
                    out.above.push(Some(noisy - noisy_threshold));
                    answered += 1;
                    if answered == self.k {
                        done = true;
                        break;
                    }
                } else {
                    out.above.push(None);
                }
            }
            provider.discrete_consume(taken);
        }
    }

    /// Runs the mechanism; released gaps are exact lattice multiples.
    pub fn run_with_source(
        &self,
        answers: &QueryAnswers,
        source: &mut dyn NoiseSource,
    ) -> SvOutput {
        self.validate_lattice(answers);
        let mut out = SvOutput { above: Vec::new() };
        self.run_core(
            answers.values().iter().copied(),
            &mut SourceDraws::new(source),
            &mut out,
        );
        out
    }

    /// Runs with a plain RNG.
    pub fn run(&self, answers: &QueryAnswers, rng: &mut StdRng) -> SvOutput {
        let mut source = SamplingSource::new(rng);
        self.run_with_source(answers, &mut source)
    }

    /// Batched fast path: `run_core` through [`ScratchDraws`], so the
    /// geometric-tail uniforms come in blocked refills and the per-rate
    /// `exp`/`ln` normalization is cached in the scratch; see
    /// [`crate::scratch`]. Output is bit-identical to [`run`](Self::run) on
    /// the same RNG stream.
    pub fn run_with_scratch<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut SvtScratch,
    ) -> SvOutput {
        let mut out = SvOutput { above: Vec::new() };
        self.run_with_scratch_into(answers, rng, scratch, &mut out);
        out
    }

    /// Allocation-free twin of [`run_with_scratch`](Self::run_with_scratch):
    /// writes into `out`, reusing its buffer across runs.
    pub fn run_with_scratch_into<R: Rng + ?Sized>(
        &self,
        answers: &QueryAnswers,
        rng: &mut R,
        scratch: &mut SvtScratch,
        out: &mut SvOutput,
    ) {
        self.validate_lattice(answers);
        self.run_core(
            answers.values().iter().copied(),
            &mut ScratchDraws::new(scratch, rng),
            out,
        );
    }

    /// Streaming twin of [`run`](Self::run): consumes `queries` lazily and
    /// stops pulling the moment the `k`-th `⊤` is answered — queries after
    /// the halt are never observed. Output is bit-identical to
    /// [`run`](Self::run) on the same RNG stream and query sequence.
    pub fn run_streaming<I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        rng: &mut StdRng,
    ) -> SvOutput {
        let mut source = SamplingSource::new(rng);
        let mut out = SvOutput { above: Vec::new() };
        self.run_core(queries, &mut SourceDraws::new(&mut source), &mut out);
        out
    }

    /// Streaming twin of [`run_with_scratch`](Self::run_with_scratch); same
    /// laziness contract as [`run_streaming`](Self::run_streaming). The
    /// scratch may buffer *noise* ahead of the stream (see
    /// [`crate::scratch`]), but never query answers.
    pub fn run_streaming_with_scratch<R: Rng + ?Sized, I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        rng: &mut R,
        scratch: &mut SvtScratch,
    ) -> SvOutput {
        let mut out = SvOutput { above: Vec::new() };
        self.run_streaming_with_scratch_into(queries, rng, scratch, &mut out);
        out
    }

    /// Allocation-free twin of
    /// [`run_streaming_with_scratch`](Self::run_streaming_with_scratch).
    pub fn run_streaming_with_scratch_into<R: Rng + ?Sized, I: IntoIterator<Item = f64>>(
        &self,
        queries: I,
        rng: &mut R,
        scratch: &mut SvtScratch,
        out: &mut SvOutput,
    ) {
        self.run_core(queries, &mut ScratchDraws::new(scratch, rng), out);
    }
}

impl AlignedMechanism for DiscreteSparseVectorWithGap {
    type Input = QueryAnswers;
    type Output = SvOutput;

    fn run(&self, input: &QueryAnswers, source: &mut dyn NoiseSource) -> SvOutput {
        self.run_with_source(input, source)
    }

    /// The classic SVT alignment with lattice-valued shifts: threshold +γ
    /// (one unit, since sensitivity 1 means integer deltas on an integer
    /// lattice), winners shifted by `γ + qᵢ - q'ᵢ`.
    fn align(
        &self,
        input: &QueryAnswers,
        neighbor: &QueryAnswers,
        tape: &NoiseTape,
        output: &SvOutput,
    ) -> NoiseTape {
        let q = input.values();
        let qp = neighbor.values();
        let favorable = self.monotonic && q.iter().zip(qp).all(|(a, b)| a >= b);
        let threshold_shift = if favorable { 0.0 } else { self.gamma };
        tape.aligned_by(|draw_idx, _| {
            if draw_idx == 0 {
                threshold_shift
            } else {
                let qi = draw_idx - 1;
                match output.above.get(qi) {
                    Some(Some(_)) => threshold_shift + q[qi] - qp[qi],
                    _ => 0.0,
                }
            }
        })
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn outputs_match(&self, a: &SvOutput, b: &SvOutput) -> bool {
        a.above.len() == b.above.len()
            && a.above.iter().zip(&b.above).all(|(x, y)| match (x, y) {
                (None, None) => true,
                (Some(gx), Some(gy)) => (gx - gy).abs() <= 1e-9 * gx.abs().max(gy.abs()).max(1.0),
                _ => false,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_alignment::checker::check_alignment_many;
    use free_gap_alignment::empirical::empirical_epsilon;
    use free_gap_alignment::{AdjacencyModel, Perturbation};
    use free_gap_noise::rng::rng_from_seed;

    fn workload() -> QueryAnswers {
        QueryAnswers::counting(vec![100.0, 5.0, 90.0, 4.0, 95.0, 3.0])
    }

    #[test]
    fn validation() {
        assert!(DiscreteSparseVectorWithGap::new(0, 1.0, 50.0, true).is_err());
        assert!(DiscreteSparseVectorWithGap::new(1, 0.0, 50.0, true).is_err());
        // threshold off the integer lattice
        assert!(DiscreteSparseVectorWithGap::new(1, 1.0, 50.5, true).is_err());
    }

    #[test]
    fn gaps_are_integers() {
        let m = DiscreteSparseVectorWithGap::new(3, 1.0, 60.0, true).unwrap();
        let mut rng = rng_from_seed(1);
        for _ in 0..100 {
            let out = m.run(&workload(), &mut rng);
            for (_, g) in out.gaps() {
                assert!(g >= 0.0);
                assert!((g - g.round()).abs() < 1e-9, "gap {g}");
            }
        }
    }

    #[test]
    fn alignment_within_budget_on_integer_adjacency() {
        let m = DiscreteSparseVectorWithGap::new(2, 0.8, 60.0, true).unwrap();
        let d = workload();
        let mut rng = rng_from_seed(2);
        for model in [AdjacencyModel::MonotoneUp, AdjacencyModel::MonotoneDown] {
            for _ in 0..25 {
                let p = Perturbation::random(model, d.len(), &mut rng);
                let deltas: Vec<f64> = p.deltas().iter().map(|x| x.round()).collect();
                let dp = d.perturbed(&deltas);
                let max = check_alignment_many(&m, &d, &dp, 15, &mut rng)
                    .unwrap_or_else(|e| panic!("{model:?}: {e}"));
                assert!(max <= 0.8 + 1e-9, "cost {max}");
            }
        }
    }

    #[test]
    fn pure_dp_at_coarse_gamma_no_tie_penalty() {
        // The module-level claim: even at γ = 1 (where the *Top-K* variant
        // has a large δ), the SVT comparisons stay within pure ε. Audit the
        // full decision vector black-box on a boundary-heavy workload.
        let eps = 1.0;
        let m = DiscreteSparseVectorWithGap::new(2, eps, 5.0, false).unwrap();
        let run = |answers: &[f64], rng: &mut StdRng| {
            m.run(&QueryAnswers::general(answers.to_vec()), rng)
                .above
                .iter()
                .map(|o| o.is_some())
                .collect::<Vec<bool>>()
        };
        // Integer workloads sitting exactly at the threshold: ties between
        // noisy query and noisy threshold happen constantly.
        let d = vec![5.0, 5.0, 4.0];
        let dp = vec![4.0, 6.0, 5.0];
        let mut rng = rng_from_seed(3);
        let audit = empirical_epsilon(run, &d, &dp, 60_000, 200, &mut rng);
        assert!(
            audit.epsilon_hat <= eps + 0.2,
            "ε̂ = {} via {}",
            audit.epsilon_hat,
            audit.witness
        );
    }

    #[test]
    fn matches_continuous_decisions_statistically() {
        let disc = DiscreteSparseVectorWithGap::new(2, 1.0, 60.0, true).unwrap();
        let cont = super::super::SparseVectorWithGap::new(2, 1.0, 60.0, true).unwrap();
        let mut rng = rng_from_seed(4);
        let runs = 4_000;
        let d_answers: usize = (0..runs)
            .map(|_| disc.run(&workload(), &mut rng).answered())
            .sum();
        let c_answers: usize = (0..runs)
            .map(|_| cont.run(&workload(), &mut rng).answered())
            .sum();
        let gap = (d_answers as f64 - c_answers as f64).abs() / runs as f64;
        assert!(
            gap < 0.1,
            "answer counts diverge: {d_answers} vs {c_answers}"
        );
    }
}
