//! Sparse-Vector-with-Gap under **discrete Laplace** noise — the
//! finite-precision counterpart of [`super::SparseVectorWithGap`].
//!
//! The §5.1 implementation-issues discussion shows the finite-precision
//! *Noisy Max* needs an `(ε, δ)` relaxation because argmax ties break the
//! alignment. Sparse Vector is different, and it is worth making the
//! contrast executable: its decisions are one-sided comparisons
//! `q̃ᵢ ≥ T̃`, and the alignment shifts both sides by the *same* lattice
//! amount, so equality cases replay identically — **no tie failure event
//! exists and the discrete mechanism satisfies pure ε-DP at any base `γ`**.
//! (Formally: on the lattice, `x < y` means `x ≤ y - γ`, which the +1
//! threshold shift preserves because all shifts are multiples of `γ` when
//! queries and threshold are.)

use super::{optimal_threshold_share, SvOutput};
use crate::answers::QueryAnswers;
use crate::draw::{DrawProvider, SourceDraws};
use crate::error::{require_epsilon, require_fraction, MechanismError};
use free_gap_alignment::{AlignedMechanism, NoiseSource, NoiseTape, SamplingSource};
use rand::rngs::StdRng;

/// Sparse-Vector-with-Gap over an integer lattice with discrete Laplace
/// noise; pure ε-DP (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiscreteSparseVectorWithGap {
    k: usize,
    epsilon: f64,
    threshold: f64,
    threshold_share: f64,
    monotonic: bool,
    gamma: f64,
}

impl DiscreteSparseVectorWithGap {
    /// Creates the mechanism with `γ = 1` (integer counts and threshold).
    pub fn new(
        k: usize,
        epsilon: f64,
        threshold: f64,
        monotonic: bool,
    ) -> Result<Self, MechanismError> {
        if k == 0 {
            return Err(MechanismError::InvalidK {
                k,
                requirement: "k must be at least 1",
            });
        }
        let gamma = 1.0;
        let t_steps = threshold / gamma;
        if (t_steps - t_steps.round()).abs() > 1e-9 {
            return Err(MechanismError::InvalidEpsilon { value: threshold });
        }
        Ok(Self {
            k,
            epsilon: require_epsilon(epsilon)?,
            threshold,
            threshold_share: optimal_threshold_share(k, monotonic),
            monotonic,
            gamma,
        })
    }

    /// Overrides the threshold/query budget split.
    pub fn with_threshold_share(mut self, share: f64) -> Result<Self, MechanismError> {
        self.threshold_share = require_fraction("threshold_share", share)?;
        Ok(self)
    }

    /// Threshold-noise rate per unit: `ε₁ = θε`.
    pub fn threshold_rate(&self) -> f64 {
        self.threshold_share * self.epsilon
    }

    /// Query-noise rate per unit: `ε₂/(ck)` (`c` = 2 general, 1 monotone).
    pub fn query_rate(&self) -> f64 {
        let c = if self.monotonic { 1.0 } else { 2.0 };
        (1.0 - self.threshold_share) * self.epsilon / (c * self.k as f64)
    }

    fn validate_lattice(&self, answers: &QueryAnswers) {
        debug_assert!(
            answers.values().iter().all(|v| {
                let steps = v / self.gamma;
                (steps - steps.round()).abs() < 1e-9
            }),
            "query answers must be multiples of γ = {}",
            self.gamma
        );
    }

    /// The single copy of the discrete SVT decision loop, generic over the
    /// [`DrawProvider`] noise comes through
    /// ([`discrete_next`](DrawProvider::discrete_next) draws).
    pub(crate) fn run_core<P: DrawProvider>(
        &self,
        answers: &QueryAnswers,
        provider: &mut P,
    ) -> SvOutput {
        self.validate_lattice(answers);
        provider.begin();
        let noisy_threshold =
            self.threshold + provider.discrete_next(self.threshold_rate(), self.gamma);
        let qrate = self.query_rate();
        let mut above = Vec::new();
        let mut answered = 0usize;
        for &q in answers.values() {
            if answered == self.k {
                break;
            }
            let noisy = q + provider.discrete_next(qrate, self.gamma);
            if noisy >= noisy_threshold {
                above.push(Some(noisy - noisy_threshold));
                answered += 1;
            } else {
                above.push(None);
            }
        }
        SvOutput { above }
    }

    /// Runs the mechanism; released gaps are exact lattice multiples.
    pub fn run_with_source(
        &self,
        answers: &QueryAnswers,
        source: &mut dyn NoiseSource,
    ) -> SvOutput {
        self.run_core(answers, &mut SourceDraws::new(source))
    }

    /// Runs with a plain RNG.
    pub fn run(&self, answers: &QueryAnswers, rng: &mut StdRng) -> SvOutput {
        let mut source = SamplingSource::new(rng);
        self.run_with_source(answers, &mut source)
    }
}

impl AlignedMechanism for DiscreteSparseVectorWithGap {
    type Input = QueryAnswers;
    type Output = SvOutput;

    fn run(&self, input: &QueryAnswers, source: &mut dyn NoiseSource) -> SvOutput {
        self.run_with_source(input, source)
    }

    /// The classic SVT alignment with lattice-valued shifts: threshold +γ
    /// (one unit, since sensitivity 1 means integer deltas on an integer
    /// lattice), winners shifted by `γ + qᵢ - q'ᵢ`.
    fn align(
        &self,
        input: &QueryAnswers,
        neighbor: &QueryAnswers,
        tape: &NoiseTape,
        output: &SvOutput,
    ) -> NoiseTape {
        let q = input.values();
        let qp = neighbor.values();
        let favorable = self.monotonic && q.iter().zip(qp).all(|(a, b)| a >= b);
        let threshold_shift = if favorable { 0.0 } else { self.gamma };
        tape.aligned_by(|draw_idx, _| {
            if draw_idx == 0 {
                threshold_shift
            } else {
                let qi = draw_idx - 1;
                match output.above.get(qi) {
                    Some(Some(_)) => threshold_shift + q[qi] - qp[qi],
                    _ => 0.0,
                }
            }
        })
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn outputs_match(&self, a: &SvOutput, b: &SvOutput) -> bool {
        a.above.len() == b.above.len()
            && a.above.iter().zip(&b.above).all(|(x, y)| match (x, y) {
                (None, None) => true,
                (Some(gx), Some(gy)) => (gx - gy).abs() <= 1e-9 * gx.abs().max(gy.abs()).max(1.0),
                _ => false,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_alignment::checker::check_alignment_many;
    use free_gap_alignment::empirical::empirical_epsilon;
    use free_gap_alignment::{AdjacencyModel, Perturbation};
    use free_gap_noise::rng::rng_from_seed;

    fn workload() -> QueryAnswers {
        QueryAnswers::counting(vec![100.0, 5.0, 90.0, 4.0, 95.0, 3.0])
    }

    #[test]
    fn validation() {
        assert!(DiscreteSparseVectorWithGap::new(0, 1.0, 50.0, true).is_err());
        assert!(DiscreteSparseVectorWithGap::new(1, 0.0, 50.0, true).is_err());
        // threshold off the integer lattice
        assert!(DiscreteSparseVectorWithGap::new(1, 1.0, 50.5, true).is_err());
    }

    #[test]
    fn gaps_are_integers() {
        let m = DiscreteSparseVectorWithGap::new(3, 1.0, 60.0, true).unwrap();
        let mut rng = rng_from_seed(1);
        for _ in 0..100 {
            let out = m.run(&workload(), &mut rng);
            for (_, g) in out.gaps() {
                assert!(g >= 0.0);
                assert!((g - g.round()).abs() < 1e-9, "gap {g}");
            }
        }
    }

    #[test]
    fn alignment_within_budget_on_integer_adjacency() {
        let m = DiscreteSparseVectorWithGap::new(2, 0.8, 60.0, true).unwrap();
        let d = workload();
        let mut rng = rng_from_seed(2);
        for model in [AdjacencyModel::MonotoneUp, AdjacencyModel::MonotoneDown] {
            for _ in 0..25 {
                let p = Perturbation::random(model, d.len(), &mut rng);
                let deltas: Vec<f64> = p.deltas().iter().map(|x| x.round()).collect();
                let dp = d.perturbed(&deltas);
                let max = check_alignment_many(&m, &d, &dp, 15, &mut rng)
                    .unwrap_or_else(|e| panic!("{model:?}: {e}"));
                assert!(max <= 0.8 + 1e-9, "cost {max}");
            }
        }
    }

    #[test]
    fn pure_dp_at_coarse_gamma_no_tie_penalty() {
        // The module-level claim: even at γ = 1 (where the *Top-K* variant
        // has a large δ), the SVT comparisons stay within pure ε. Audit the
        // full decision vector black-box on a boundary-heavy workload.
        let eps = 1.0;
        let m = DiscreteSparseVectorWithGap::new(2, eps, 5.0, false).unwrap();
        let run = |answers: &[f64], rng: &mut StdRng| {
            m.run(&QueryAnswers::general(answers.to_vec()), rng)
                .above
                .iter()
                .map(|o| o.is_some())
                .collect::<Vec<bool>>()
        };
        // Integer workloads sitting exactly at the threshold: ties between
        // noisy query and noisy threshold happen constantly.
        let d = vec![5.0, 5.0, 4.0];
        let dp = vec![4.0, 6.0, 5.0];
        let mut rng = rng_from_seed(3);
        let audit = empirical_epsilon(run, &d, &dp, 60_000, 200, &mut rng);
        assert!(
            audit.epsilon_hat <= eps + 0.2,
            "ε̂ = {} via {}",
            audit.epsilon_hat,
            audit.witness
        );
    }

    #[test]
    fn matches_continuous_decisions_statistically() {
        let disc = DiscreteSparseVectorWithGap::new(2, 1.0, 60.0, true).unwrap();
        let cont = super::super::SparseVectorWithGap::new(2, 1.0, 60.0, true).unwrap();
        let mut rng = rng_from_seed(4);
        let runs = 4_000;
        let d_answers: usize = (0..runs)
            .map(|_| disc.run(&workload(), &mut rng).answered())
            .sum();
        let c_answers: usize = (0..runs)
            .map(|_| cont.run(&workload(), &mut rng).answered())
            .sum();
        let gap = (d_answers as f64 - c_answers as f64).abs() / runs as f64;
        assert!(
            gap < 0.1,
            "answer counts diverge: {d_answers} vs {c_answers}"
        );
    }
}
