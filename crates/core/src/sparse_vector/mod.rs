//! The Sparse Vector family (§6): classic SVT baseline, Sparse-Vector-with-
//! Gap, and the paper's Adaptive-Sparse-Vector-with-Gap (Algorithm 2).

mod adaptive;
pub mod broken;
mod classic;
mod discrete;
mod gap;
mod multi_branch;
mod output;

pub use adaptive::AdaptiveSparseVector;
pub use classic::{ClassicSparseVector, SvtStreamState};
pub use discrete::DiscreteSparseVectorWithGap;
pub use gap::SparseVectorWithGap;
pub use multi_branch::{
    as_algorithm2_branch, MultiBranchAdaptiveSparseVector, MultiBranchOutcome, MultiBranchSvOutput,
};
pub use output::{AdaptiveOutcome, AdaptiveSvOutput, Branch, SvOutput};

/// The Lyu et al. recommended budget split between threshold noise and query
/// noise: ratio `1 : (2k)^{2/3}` for general queries, `1 : k^{2/3}` for
/// monotone queries. Returns the threshold share
/// `θ = 1 / (1 + ratio)` used throughout §7.
pub fn optimal_threshold_share(k: usize, monotonic: bool) -> f64 {
    let base = if monotonic { k as f64 } else { 2.0 * k as f64 };
    1.0 / (1.0 + base.powf(2.0 / 3.0))
}

/// Variance of a gap released by (non-adaptive) Sparse-Vector-with-Gap run
/// at budget `epsilon` with the optimal split: `8(1+(2k)^{2/3})³/(2ε)²`-style
/// closed forms from §6.2.
///
/// Concretely: with `ε₁ = θε` on the threshold and `ε₂ = (1-θ)ε` across `k`
/// query answers at scale `c·k/ε₂` (`c` = 2 general, 1 monotone), the gap
/// variance is `2/ε₁² + 2(ck/ε₂)²`.
pub fn gap_variance(k: usize, epsilon: f64, monotonic: bool, threshold_share: f64) -> f64 {
    let c = if monotonic { 1.0 } else { 2.0 };
    let eps1 = threshold_share * epsilon;
    let eps2 = (1.0 - threshold_share) * epsilon;
    let query_scale = c * k as f64 / eps2;
    2.0 / (eps1 * eps1) + 2.0 * query_scale * query_scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn optimal_share_formulas() {
        let k = 4;
        let mono = optimal_threshold_share(k, true);
        assert!((mono - 1.0 / (1.0 + 4f64.powf(2.0 / 3.0))).abs() < 1e-12);
        let gen = optimal_threshold_share(k, false);
        assert!((gen - 1.0 / (1.0 + 8f64.powf(2.0 / 3.0))).abs() < 1e-12);
        assert!(
            gen < mono,
            "general split gives the threshold a smaller share"
        );
    }

    #[test]
    fn gap_variance_matches_section_6_2_closed_form() {
        // §6.2: with the optimal general split at budget ε' the gap variance
        // is 2(1+(2k)^{2/3})³/ε'².
        let k = 5;
        let eps = 0.35;
        let share = optimal_threshold_share(k, false);
        let got = gap_variance(k, eps, false, share);
        let c = (2.0 * k as f64).powf(2.0 / 3.0);
        let expect = 2.0 * (1.0 + c).powi(3) / (eps * eps);
        assert!((got - expect).abs() / expect < 1e-12, "{got} vs {expect}");
        // Monotone: 2(1+k^{2/3})³/ε'².
        let share_m = optimal_threshold_share(k, true);
        let got_m = gap_variance(k, eps, true, share_m);
        let cm = (k as f64).powf(2.0 / 3.0);
        let expect_m = 2.0 * (1.0 + cm).powi(3) / (eps * eps);
        assert!((got_m - expect_m).abs() / expect_m < 1e-12);
    }
}
