//! # free-gap-core
//!
//! The primary contribution of Ding, Wang, Zhang & Kifer, *"Free Gap
//! Information from the Differentially Private Sparse Vector and Noisy Max
//! Mechanisms"* (VLDB 2019), as a production Rust library — plus every
//! baseline the paper compares against.
//!
//! ## Mechanisms
//!
//! | Module | Mechanism | Paper reference |
//! |--------|-----------|-----------------|
//! | [`noisy_max::NoisyTopKWithGap`] | Noisy-Top-K-with-Gap | Algorithm 1, Theorem 2 |
//! | [`noisy_max::ClassicNoisyTopK`] | index-only Noisy Max / Top-K baseline | Dwork & Roth, §5 |
//! | [`sparse_vector::AdaptiveSparseVector`] | Adaptive-Sparse-Vector-with-Gap | Algorithm 2, Theorem 4 |
//! | [`sparse_vector::SparseVectorWithGap`] | Sparse-Vector-with-Gap (Wang et al.) | §6.1 (σ = ∞ case) |
//! | [`sparse_vector::ClassicSparseVector`] | SVT baseline (Lyu et al.) | §2, §7.3 |
//! | [`exponential_mech::ExponentialMechanism`] | exponential-mechanism selection baseline | §2 related work |
//! | [`laplace_mech::LaplaceMechanism`] | Laplace measurement | Theorem 1 |
//!
//! ## Free-gap postprocessing
//!
//! * [`postprocess::blue`] — the best linear unbiased estimator combining
//!   direct measurements with Top-K gaps (Theorem 3) and its error ratio
//!   (Corollary 1, up to 50% MSE reduction for counting queries).
//! * [`postprocess::weighted`] — inverse-variance combination of SVT gaps
//!   with measurements (§6.2, up to 50%/20% reduction).
//! * [`postprocess::confidence`] — free lower-confidence intervals from the
//!   gap (Lemma 5).
//! * [`pipelines`] — end-to-end select-then-measure workflows with a 50/50
//!   budget split, the protocol of the paper's §7.2 experiments.
//!
//! Every mechanism implements
//! [`free_gap_alignment::AlignedMechanism`], packaging the local alignment
//! from its privacy proof (Lemma 2 / Lemma 4) so the test-suite can execute
//! the proof obligations on concrete runs.
//!
//! ## Execution paths: one core per mechanism, generic over [`draw::DrawProvider`]
//!
//! Each mechanism's decision/budget logic exists in **exactly one**
//! function, generic over the [`draw::DrawProvider`] it draws noise
//! through; the public entry points only pick the provider:
//!
//! * **`run` / `run_with_source`** — the [`draw::SourceDraws`] adapter over
//!   `dyn NoiseSource`. This is the path the alignment checker interposes
//!   on (recording and replaying tapes), and the reference semantics; it is
//!   strictly draw-exact, so tapes stay draw-for-draw faithful.
//! * **`run_with_scratch`** — [`draw::ScratchDraws`] (SVT family) or
//!   [`draw::RngDraws`] (Top-K family): the batched fast path for
//!   Monte-Carlo and high-traffic serving. Noise is drawn in batches via
//!   [`free_gap_noise::ContinuousDistribution::fill_into`] (through the
//!   chunked [`free_gap_noise::BlockBuffer`]), noisy-value buffers live in
//!   a reusable [`scratch::TopKScratch`] / [`scratch::SvtScratch`], and
//!   the RNG is a monomorphic generic (no virtual dispatch). Outputs are
//!   **bit-for-bit identical** to `run` on the same RNG stream; the
//!   scratch path may consume *more* of the stream (batch lookahead), so
//!   derive a fresh [`free_gap_noise::rng::derive_stream`] per run. The
//!   `*_into` variants additionally reuse a caller-owned output, making a
//!   scratch run fully allocation-free.
//! * **`run_streaming` / `run_streaming_with_scratch`** (SVT family only)
//!   — the same cores consuming `impl IntoIterator<Item = f64>` *lazily*,
//!   answering each query as it is pulled and halting the pull the moment
//!   the mechanism stops (k-th `⊤`, answer limit, or exhausted adaptive
//!   budget). Queries after the halt are **never observed** — the
//!   privacy-relevant property of SVT's online form — and outputs are
//!   bit-identical to the materialized paths on the same RNG stream and
//!   query sequence.
//!
//! See [`draw`] for the provider contract, [`scratch`] for the buffer
//! discipline and an example, and [`pipelines::PipelineScratch`] for the
//! select-then-measure versions. The `repro bench` command in
//! `free-gap-bench` tracks the speedup (≈1.1× like-for-like, ≈2× with the
//! [`free_gap_noise::rng::FastRng`] Monte-Carlo generator) and
//! `repro bench-compare` gates CI on the recorded trajectory.
//!
//! ## Unified call surface
//!
//! [`api`] packages every grid mechanism behind one request/response
//! shape: the [`api::Mechanism`] trait (`QuerySlice` in,
//! [`api::MechanismOutput`] out, noise through any provider) and the
//! [`api::AnyMechanism`] dispatch enum with the provider-choosing
//! conveniences [`api::AnyMechanism::call_batched`] (fast path) and
//! [`api::AnyMechanism::call_reference`] (dyn reference path). The
//! per-mechanism entry points above remain the ergonomic surface; the
//! unified one is what uniform callers — the benchmark grid and the
//! `free-gap-serve` multi-tenant server — build on. The SVT family
//! additionally exposes a *resumable* streaming form
//! ([`sparse_vector::ClassicSparseVector::stream_open`] /
//! [`sparse_vector::ClassicSparseVector::stream_feed`]) whose batched
//! feeds are bit-identical to a one-shot streaming run, which is what an
//! open server session drives.
//!
//! ## Example
//!
//! ```
//! use free_gap_core::answers::QueryAnswers;
//! use free_gap_core::noisy_max::NoisyTopKWithGap;
//! use free_gap_noise::rng::rng_from_seed;
//!
//! // 5 counting queries, budget ε = 1.0, top-3 with free gaps.
//! let answers = QueryAnswers::counting(vec![120.0, 40.0, 97.0, 80.0, 3.0]);
//! let mech = NoisyTopKWithGap::new(3, 1.0, true).unwrap();
//! let out = mech.run(&answers, &mut rng_from_seed(1)).unwrap();
//! assert_eq!(out.items.len(), 3);
//! for item in &out.items {
//!     assert!(item.gap >= 0.0); // gaps are free — and always non-negative
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// R3 (panic-freedom) surfaced in the compiler too: every non-test unwrap/expect
// in the two privacy-critical crates must carry a per-site justification.
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod answers;
pub mod api;
pub mod budget;
pub mod draw;
pub mod error;
pub mod exponential_mech;
pub mod laplace_mech;
pub mod metrics;
pub mod noisy_max;
pub mod pipelines;
pub mod postprocess;
pub mod scratch;
pub mod sparse_vector;
pub mod staircase_mech;

pub use answers::QueryAnswers;
pub use api::{AnyMechanism, CallScratch, ExponentialTopK, Mechanism, MechanismOutput, QuerySlice};
pub use budget::PrivacyBudget;
pub use draw::{DrawProvider, RngDraws, ScratchDraws, SourceDraws};
pub use error::MechanismError;
pub use scratch::{SvtScratch, TopKScratch};
