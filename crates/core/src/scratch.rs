//! Reusable scratch buffers for the allocation-free mechanism fast paths.
//!
//! The `run` methods on each mechanism draw noise through `dyn NoiseSource`
//! — one virtual call and one `Laplace::new` per draw — and allocate a fresh
//! noisy-value vector per run. That is the right shape for the alignment
//! checker (which must interpose on every draw), but it is pure overhead for
//! Monte-Carlo loops that execute the same mechanism tens of thousands of
//! times on workloads with up to ~100k queries (§7 of the paper).
//!
//! The `run_with_scratch` entry points take one of the scratch types below
//! and a plain [`rand::Rng`]; they feed the mechanism's single
//! [`DrawProvider`](crate::draw::DrawProvider)-generic core through
//! [`ScratchDraws`](crate::draw::ScratchDraws), so that:
//!
//! * noise is drawn **in batches** via
//!   [`ContinuousDistribution::fill_into`](free_gap_noise::ContinuousDistribution::fill_into),
//!   not draw-by-draw;
//! * noisy-value buffers live in the scratch and are **reused across runs**;
//! * the RNG is a **monomorphic** generic parameter, so the whole inner loop
//!   inlines — no `dyn` dispatch anywhere.
//!
//! Outputs are guaranteed **bit-for-bit identical** to the corresponding
//! allocating path run against the same RNG stream (asserted by the
//! `scratch_equivalence` test-suite). The SVT mechanisms' streaming entry
//! points (`run_streaming_with_scratch`) share the same scratch: lookahead
//! applies to *noise* only — query answers are pulled strictly on demand
//! and never buffered ahead of the mechanism's halting point.
//!
//! ## Stream discipline
//!
//! An [`SvtScratch`] entry point buffers lookahead from the stream it is
//! given, and *how much* depends on the scratch's consumption history (the
//! prediction that sizes its batches). Outputs are unaffected — they depend
//! only on the draws actually served — but the stream's final position is
//! not reproducible across scratch histories. Two rules keep everything
//! deterministic:
//!
//! 1. derive a fresh stream per run
//!    ([`free_gap_noise::rng::derive_stream`]), and
//! 2. make the scratch call the **last** consumer of that stream — when one
//!    run executes several mechanisms, give each its own sub-stream (e.g.
//!    seed one from a `rng.gen::<u64>()` drawn up front) instead of running
//!    them back-to-back on a shared stream.
//!
//! [`TopKScratch`] draws exactly `n` variates (no lookahead), so it is
//! exempt from rule 2 — which is what lets the Top-K pipeline stay
//! bit-identical end-to-end.
//!
//! ```
//! use free_gap_core::answers::QueryAnswers;
//! use free_gap_core::noisy_max::NoisyTopKWithGap;
//! use free_gap_core::scratch::TopKScratch;
//! use free_gap_noise::rng::derive_stream;
//!
//! let answers = QueryAnswers::counting(vec![120.0, 40.0, 97.0, 80.0, 3.0]);
//! let mech = NoisyTopKWithGap::new(3, 1.0, true).unwrap();
//! let mut scratch = TopKScratch::new();
//! for run in 0..100 {
//!     let out = mech
//!         .run_with_scratch(&answers, &mut derive_stream(7, run), &mut scratch)
//!         .unwrap();
//!     assert_eq!(out.items.len(), 3);
//! }
//! ```

use free_gap_noise::{BlockBuffer, DiscreteLaplace, Exponential, Gumbel, Laplace, Staircase};
use rand::Rng;

/// Reusable buffers for the Noisy Top-K family's batched fast path.
///
/// Holds the noisy-answer vector (length `n`), the selection buffer
/// (length `k + 1`), and an auxiliary vector the batched Gumbel race uses
/// for its scaled-utility base; all are grown on first use and reused
/// afterwards.
#[derive(Debug, Default, Clone)]
pub struct TopKScratch {
    pub(crate) noisy: Vec<f64>,
    pub(crate) top: Vec<usize>,
    pub(crate) aux: Vec<f64>,
}

impl TopKScratch {
    /// Creates an empty scratch (buffers grow on first run).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Reusable noise tape for the Sparse Vector family's batched fast and
/// streaming paths — the state behind
/// [`ScratchDraws`](crate::draw::ScratchDraws).
///
/// SVT draws at several scales (threshold noise, per-branch query noise),
/// and the finite-precision variants draw discrete Laplace noise at several
/// rates — so the scratch buffers **raw uniforms** (a [`BlockBuffer`]) and
/// derives every draw from them at serve time: continuous draws as *unit*
/// `Lap(1)` transforms rescaled per draw (IEEE multiplication makes
/// `unit * scale` bit-identical to drawing `Lap(scale)` directly), discrete
/// draws as one-uniform closed-form geometric-tail inversions with the
/// distribution's `exp`/`ln` normalization hoisted and cached per rate.
/// Because both families serve off one tape, any interleaving of continuous
/// and discrete draws preserves the sequential stream order. Block sizing
/// (first block from the previous run's consumption, later blocks tapered
/// and cache-clamped) lives in [`BlockBuffer`]; this type pins the
/// continuous distribution to unit Laplace and exposes the draw shapes the
/// [`DrawProvider`](crate::draw::DrawProvider) contract needs: single
/// scaled draws, whole blocks of scaled `m`-tuples, and their discrete
/// twins.
#[derive(Debug, Clone)]
pub struct SvtScratch {
    block: BlockBuffer,
    unit: Laplace,
    /// Scaled view of the currently peeked tuple block (rebuilt per peek,
    /// reused across runs).
    scaled: Vec<f64>,
    /// Cached discrete distributions keyed by `(unit_epsilon, gamma)` bits —
    /// constructing a [`DiscreteLaplace`] costs an `exp` and an `ln`, which
    /// the batched discrete path hoists out of the per-draw loop (a run uses
    /// one or two rates, so a linear scan beats any map).
    discrete_dists: Vec<((u64, u64), DiscreteLaplace)>,
    /// Per-slot distributions of the currently peeked discrete tuple block.
    discrete_tuple: Vec<DiscreteLaplace>,
}

impl SvtScratch {
    /// Creates an empty scratch.
    #[allow(clippy::expect_used)]
    pub fn new() -> Self {
        Self {
            block: BlockBuffer::new(),
            // lint:allow(panic-freedom): the constant unit scale is always a valid Laplace parameter
            unit: Laplace::new(1.0).expect("unit scale is valid"),
            scaled: Vec::new(),
            discrete_dists: Vec::new(),
            discrete_tuple: Vec::new(),
        }
    }

    /// Starts a new run: discards draws buffered from the previous RNG
    /// stream and predicts this run's consumption from the last one.
    pub(crate) fn begin(&mut self) {
        self.block.begin();
    }

    /// Next `Lap(scale)` draw (bit-identical to sampling at `scale`),
    /// refilling the unit buffer in blocks as needed.
    #[inline]
    pub(crate) fn next_scaled<R: Rng + ?Sized>(&mut self, rng: &mut R, scale: f64) -> f64 {
        self.block.next(&self.unit, rng) * scale
    }

    /// Predicted draw consumption of the current run (last run's usage) —
    /// used by mechanisms to pre-size their output buffers.
    pub(crate) fn predicted_draws(&self) -> usize {
        self.block.predicted_draws()
    }

    /// The buffered draws ahead of the cursor as whole scaled
    /// `scales.len()`-tuples (slot `b` of each tuple is `Lap(scales[b])`,
    /// bit-identical to sampling at that scale) — see
    /// [`BlockBuffer::peek_tuples_scaled`].
    #[inline]
    pub(crate) fn peek_tuples_scaled<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        scales: &[f64],
    ) -> &[f64] {
        self.block
            .peek_tuples_scaled(&self.unit, rng, scales, &mut self.scaled);
        &self.scaled
    }

    /// Advances the cursor past `draws` units previously obtained from
    /// [`peek_tuples_scaled`](Self::peek_tuples_scaled).
    #[inline]
    pub(crate) fn consume(&mut self, draws: usize) {
        self.block.consume(draws);
    }

    /// The cached discrete Laplace for `(unit_epsilon, gamma)`, constructed
    /// once per distinct rate and reused across draws and runs.
    #[allow(clippy::expect_used)]
    fn discrete_dist(
        dists: &mut Vec<((u64, u64), DiscreteLaplace)>,
        unit_epsilon: f64,
        gamma: f64,
    ) -> DiscreteLaplace {
        let key = (unit_epsilon.to_bits(), gamma.to_bits());
        if let Some((_, d)) = dists.iter().find(|(k, _)| *k == key) {
            return *d;
        }
        // lint:allow(panic-freedom): the scale/rate was validated by the mechanism constructor; re-validation cannot fail
        let d = DiscreteLaplace::new(unit_epsilon, gamma).expect("mechanism-validated rate");
        dists.push((key, d));
        d
    }

    /// Next discrete Laplace draw over `{kγ}` at per-unit rate
    /// `unit_epsilon`, served from the shared raw-uniform tape (one
    /// uniform through the closed-form tail inversion, bit-identical to
    /// [`sample_value`](free_gap_noise::DiscreteDistribution::sample_value)
    /// at the same stream position).
    #[inline]
    pub(crate) fn discrete_next<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        unit_epsilon: f64,
        gamma: f64,
    ) -> f64 {
        let d = Self::discrete_dist(&mut self.discrete_dists, unit_epsilon, gamma);
        self.block.next_discrete(&d, rng)
    }

    /// The buffered draws ahead of the cursor as whole
    /// `unit_epsilons.len()`-tuples of discrete Laplace values (slot `b` of
    /// each tuple at rate `unit_epsilons[b]`) — see
    /// [`BlockBuffer::discrete_peek_tuples`]. Commit consumption with
    /// [`consume_discrete`](Self::consume_discrete) in served values.
    #[inline]
    pub(crate) fn discrete_peek_tuples<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        unit_epsilons: &[f64],
        gamma: f64,
    ) -> &[f64] {
        self.discrete_tuple.clear();
        for &rate in unit_epsilons {
            self.discrete_tuple
                .push(Self::discrete_dist(&mut self.discrete_dists, rate, gamma));
        }
        self.block
            .discrete_peek_tuples(&self.discrete_tuple, rng, &mut self.scaled);
        &self.scaled
    }

    /// Advances the cursor past `draws` discrete values previously obtained
    /// from [`discrete_peek_tuples`](Self::discrete_peek_tuples) (one raw
    /// uniform each, like the continuous draws).
    #[inline]
    pub(crate) fn consume_discrete(&mut self, draws: usize) {
        self.block.consume(draws);
    }

    /// Next standard-shape Gumbel(`beta`) draw, served from the shared
    /// raw-uniform tape through the uncached transform path (the scale may
    /// vary per draw and differs from the run's cached unit-Laplace
    /// transform). Bit-identical to
    /// [`Gumbel::sample`](free_gap_noise::ContinuousDistribution::sample)
    /// at the same stream position.
    #[inline]
    #[allow(clippy::expect_used)]
    pub(crate) fn gumbel_next<R: Rng + ?Sized>(&mut self, rng: &mut R, beta: f64) -> f64 {
        // lint:allow(panic-freedom): the scale/rate was validated by the mechanism constructor; re-validation cannot fail
        let dist = Gumbel::new(beta).expect("mechanism-validated scale");
        self.block.next_uncached(&dist, rng)
    }

    /// Next one-sided Exponential(`beta`) draw from the shared tape; same
    /// serving contract as [`gumbel_next`](Self::gumbel_next).
    #[inline]
    #[allow(clippy::expect_used)]
    pub(crate) fn exp_next<R: Rng + ?Sized>(&mut self, rng: &mut R, beta: f64) -> f64 {
        // lint:allow(panic-freedom): the scale/rate was validated by the mechanism constructor; re-validation cannot fail
        let dist = Exponential::new(beta).expect("mechanism-validated scale");
        self.block.next_uncached(&dist, rng)
    }

    /// Next staircase draw (four tape uniforms through the four-variable
    /// transform), bit-identical to
    /// [`Staircase::sample`](free_gap_noise::ContinuousDistribution::sample)
    /// at the same stream position.
    #[inline]
    pub(crate) fn staircase_next<R: Rng + ?Sized>(&mut self, rng: &mut R, dist: &Staircase) -> f64 {
        self.block.next_staircase(dist, rng)
    }

    /// Fused `base[i] + staircase draw` batch over the shared tape — the
    /// measurement shape, with the distribution constructed once by the
    /// caller and any buffered lookahead drained first, in order.
    pub(crate) fn staircase_fill_offset<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        base: &[f64],
        dist: &Staircase,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.extend(
            base.iter()
                .map(|b| b + self.block.next_staircase(dist, rng)),
        );
    }

    /// Fused `base[i] + discrete draw` batch over the shared tape — the
    /// discrete Noisy-Max shape, with the distribution construction hoisted
    /// out of the loop and any buffered lookahead drained first, in order.
    pub(crate) fn discrete_fill_offset<R: Rng + ?Sized>(
        &mut self,
        rng: &mut R,
        base: &[f64],
        unit_epsilon: f64,
        gamma: f64,
        out: &mut Vec<f64>,
    ) {
        let d = Self::discrete_dist(&mut self.discrete_dists, unit_epsilon, gamma);
        out.clear();
        out.extend(base.iter().map(|b| b + self.block.next_discrete(&d, rng)));
    }
}

impl Default for SvtScratch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_noise::rng::rng_from_seed;
    use free_gap_noise::ContinuousDistribution;

    #[test]
    fn svt_scratch_replays_the_sequential_scaled_stream() {
        let lap = Laplace::new(2.5).unwrap();
        let mut expect_rng = rng_from_seed(3);
        let mut scratch = SvtScratch::new();
        let mut rng = rng_from_seed(3);
        scratch.begin();
        for i in 0..1000 {
            let got = scratch.next_scaled(&mut rng, 2.5);
            let want = lap.sample(&mut expect_rng);
            assert_eq!(got.to_bits(), want.to_bits(), "draw {i}");
        }
    }

    #[test]
    fn prefill_tracks_previous_consumption() {
        // Block sizing internals are covered in `free_gap_noise::block`;
        // here we only pin that the scratch forwards the prediction.
        let mut scratch = SvtScratch::new();
        let mut rng = rng_from_seed(6);
        scratch.begin();
        for _ in 0..1000 {
            scratch.next_scaled(&mut rng, 1.0);
        }
        scratch.begin();
        assert_eq!(scratch.predicted_draws(), 1000);
    }

    #[test]
    fn peek_tuples_scaled_preserves_sequential_order() {
        // Forwarding check for the scaled tuple API: the served stream
        // equals sequential draws at the per-slot scales. Refill/leftover
        // edge cases live in `free_gap_noise::block`.
        let scales = [3.0f64, 0.5, 7.0];
        let m = scales.len();
        let mut expect_rng = rng_from_seed(21);
        let mut scratch = SvtScratch::new();
        let mut rng = rng_from_seed(21);
        scratch.begin();
        let mut tuples_seen = 0usize;
        while tuples_seen < 200 {
            let slab = scratch.peek_tuples_scaled(&mut rng, &scales);
            assert!(slab.len() >= m && slab.len().is_multiple_of(m));
            let take = (slab.len() / m).min(2) * m;
            for tuple in slab[..take].chunks_exact(m) {
                for (j, &v) in tuple.iter().enumerate() {
                    let want = Laplace::new(scales[j]).unwrap().sample(&mut expect_rng);
                    assert_eq!(v.to_bits(), want.to_bits(), "tuple {tuples_seen} slot {j}");
                }
                tuples_seen += 1;
            }
            scratch.consume(take);
        }
    }
}
