//! Reusable scratch buffers for the allocation-free mechanism fast paths.
//!
//! The `run` methods on each mechanism draw noise through `dyn NoiseSource`
//! — one virtual call and one `Laplace::new` per draw — and allocate a fresh
//! noisy-value vector per run. That is the right shape for the alignment
//! checker (which must interpose on every draw), but it is pure overhead for
//! Monte-Carlo loops that execute the same mechanism tens of thousands of
//! times on workloads with up to ~100k queries (§7 of the paper).
//!
//! The `run_with_scratch` entry points take one of the scratch types below
//! and a plain [`rand::Rng`]:
//!
//! * noise is drawn **in batches** via
//!   [`ContinuousDistribution::fill_into`], not draw-by-draw;
//! * noisy-value buffers live in the scratch and are **reused across runs**;
//! * the RNG is a **monomorphic** generic parameter, so the whole inner loop
//!   inlines — no `dyn` dispatch anywhere.
//!
//! Outputs are guaranteed **bit-for-bit identical** to the corresponding
//! allocating path run against the same RNG stream (asserted by the
//! `scratch_equivalence` test-suite).
//!
//! ## Stream discipline
//!
//! An [`SvtScratch`] entry point buffers lookahead from the stream it is
//! given, and *how much* depends on the scratch's consumption history (the
//! prediction that sizes its batches). Outputs are unaffected — they depend
//! only on the draws actually served — but the stream's final position is
//! not reproducible across scratch histories. Two rules keep everything
//! deterministic:
//!
//! 1. derive a fresh stream per run
//!    ([`free_gap_noise::rng::derive_stream`]), and
//! 2. make the scratch call the **last** consumer of that stream — when one
//!    run executes several mechanisms, give each its own sub-stream (e.g.
//!    seed one from a `rng.gen::<u64>()` drawn up front) instead of running
//!    them back-to-back on a shared stream.
//!
//! [`TopKScratch`] draws exactly `n` variates (no lookahead), so it is
//! exempt from rule 2 — which is what lets the Top-K pipeline stay
//! bit-identical end-to-end.
//!
//! ```
//! use free_gap_core::answers::QueryAnswers;
//! use free_gap_core::noisy_max::NoisyTopKWithGap;
//! use free_gap_core::scratch::TopKScratch;
//! use free_gap_noise::rng::derive_stream;
//!
//! let answers = QueryAnswers::counting(vec![120.0, 40.0, 97.0, 80.0, 3.0]);
//! let mech = NoisyTopKWithGap::new(3, 1.0, true).unwrap();
//! let mut scratch = TopKScratch::new();
//! for run in 0..100 {
//!     let out = mech.run_with_scratch(&answers, &mut derive_stream(7, run), &mut scratch);
//!     assert_eq!(out.items.len(), 3);
//! }
//! ```

use free_gap_noise::{ContinuousDistribution, Laplace};
use rand::Rng;

/// Reusable buffers for the Noisy Top-K family's batched fast path.
///
/// Holds the noisy-answer vector (length `n`) and the selection buffer
/// (length `k + 1`); both are grown on first use and reused afterwards.
#[derive(Debug, Default, Clone)]
pub struct TopKScratch {
    pub(crate) noisy: Vec<f64>,
    pub(crate) top: Vec<usize>,
}

impl TopKScratch {
    /// Creates an empty scratch (buffers grow on first run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fills `noisy` with `answers[i] + Lap(scale)` via the batched
    /// [`ContinuousDistribution::fill_into_offset`] — noise generation and
    /// the `+ q` offset fused, so the `n`-sized buffer is written exactly
    /// once (at `n = 100k` a second pass is measurable memory traffic).
    pub(crate) fn fill_noisy<R: Rng + ?Sized>(&mut self, answers: &[f64], scale: f64, rng: &mut R) {
        let lap = Laplace::new(scale).expect("mechanism-validated scale");
        self.noisy.resize(answers.len(), 0.0);
        lap.fill_into_offset(rng, answers, &mut self.noisy);
    }
}

/// Reusable unit-noise buffer for the Sparse Vector family's batched fast
/// path.
///
/// SVT draws at several scales (threshold noise, per-branch query noise), so
/// the scratch buffers *unit* `Lap(1)` draws and rescales per draw — IEEE
/// multiplication makes `unit * scale` bit-identical to drawing
/// `Lap(scale)` directly, while one `fill_into` pass amortizes the sampling
/// loop. The first batch of a run is sized by the *previous* run's
/// consumption (Monte-Carlo runs of one mechanism consume near-identical
/// draw counts), so overdraw waste stays marginal on both short and long
/// runs.
#[derive(Debug, Clone)]
pub struct SvtScratch {
    unit: Vec<f64>,
    cursor: usize,
    /// Fresh draws pulled from the RNG since the last [`begin`](Self::begin)
    /// (served = `filled - (unit.len() - cursor)`; tracked at refill time so
    /// the per-draw hot path carries no extra bookkeeping).
    filled: usize,
    /// Predicted consumption of the next run (last run's served count).
    predicted: usize,
}

impl SvtScratch {
    /// Smallest batch ever drawn (also the first-ever prediction).
    const MIN_CHUNK: usize = 16;
    /// Largest batch: 4096 doubles = 32 KiB, comfortably L1-resident, so
    /// long runs stream through a hot buffer instead of round-tripping one
    /// run-sized buffer through DRAM.
    const CACHE_CHUNK: usize = 4096;

    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self {
            unit: Vec::new(),
            cursor: 0,
            filled: 0,
            predicted: Self::MIN_CHUNK,
        }
    }

    /// Starts a new run: discards draws buffered from the previous RNG
    /// stream and predicts this run's consumption from the last one.
    ///
    /// SVT stops after a data-dependent number of draws, so a fixed batch
    /// size either overdraws badly (short runs) or refills constantly (long
    /// runs). Consecutive Monte-Carlo runs of the same mechanism on the
    /// same workload consume nearly the same count, so the previous run's
    /// usage is an excellent first-batch size; after that, refills fall
    /// back to a modest fixed chunk.
    pub(crate) fn begin(&mut self) {
        let served = self.filled - (self.unit.len() - self.cursor);
        if served > 0 {
            self.predicted = served.max(Self::MIN_CHUNK);
        }
        self.unit.clear();
        self.cursor = 0;
        self.filled = 0;
    }

    /// Next unit-Laplace draw, refilling the buffer in batches as needed.
    #[inline]
    pub(crate) fn next_unit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        if self.cursor == self.unit.len() {
            self.refill(rng);
        }
        let v = self.unit[self.cursor];
        self.cursor += 1;
        v
    }

    /// Next `Lap(scale)` draw (bit-identical to sampling at `scale`).
    #[inline]
    pub(crate) fn next_scaled<R: Rng + ?Sized>(&mut self, rng: &mut R, scale: f64) -> f64 {
        self.next_unit(rng) * scale
    }

    /// Predicted draw consumption of the current run (last run's usage) —
    /// used by mechanisms to pre-size their output buffers.
    pub(crate) fn predicted_draws(&self) -> usize {
        self.predicted
    }

    /// The buffered unit draws ahead of the cursor, truncated to whole
    /// pairs, refilling first if fewer than one pair is available. Callers
    /// iterate the slice (e.g. `chunks_exact(2)`) with zero per-pair cursor
    /// arithmetic, then commit consumption with [`consume`](Self::consume).
    /// Draw order is identical to sequential [`next_unit`](Self::next_unit)
    /// draws.
    #[inline]
    pub(crate) fn peek_pairs<R: Rng + ?Sized>(&mut self, rng: &mut R) -> &[f64] {
        if self.cursor + 2 > self.unit.len() {
            self.refill_keeping_leftover(rng);
        }
        let whole = (self.unit.len() - self.cursor) & !1;
        &self.unit[self.cursor..self.cursor + whole]
    }

    /// Advances the cursor past `draws` units previously obtained from
    /// [`peek_pairs`](Self::peek_pairs).
    #[inline]
    pub(crate) fn consume(&mut self, draws: usize) {
        debug_assert!(self.cursor + draws <= self.unit.len());
        self.cursor += draws;
    }

    /// Size of the next batch: the predicted remainder of this run, clamped
    /// to `[MIN_CHUNK, CACHE_CHUNK]` — tapering toward the prediction keeps
    /// end-of-run overdraw small while the cap keeps every batch hot in L1.
    fn next_batch_size(&self) -> usize {
        self.predicted
            .saturating_sub(self.filled)
            .clamp(Self::MIN_CHUNK, Self::CACHE_CHUNK)
    }

    #[cold]
    fn refill<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let size = self.next_batch_size();
        let unit = Laplace::new(1.0).expect("unit scale is valid");
        self.unit.resize(size, 0.0);
        unit.fill_into(rng, &mut self.unit);
        self.cursor = 0;
        self.filled += size;
    }

    /// Refill for [`peek_pairs`](Self::peek_pairs): an already-drawn buffered
    /// unit (if any) moves to the front so the stream order is identical to
    /// sequential draws, and fresh draws fill the rest.
    #[cold]
    fn refill_keeping_leftover<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        let leftover = self.unit.len() - self.cursor;
        debug_assert!(leftover < 2);
        let carried = if leftover == 1 {
            Some(self.unit[self.cursor])
        } else {
            None
        };
        let size = self.next_batch_size();
        let unit = Laplace::new(1.0).expect("unit scale is valid");
        self.unit.resize(size.max(2), 0.0);
        match carried {
            Some(v) => {
                self.unit[0] = v;
                unit.fill_into(rng, &mut self.unit[1..]);
                self.filled += self.unit.len() - 1;
            }
            None => {
                unit.fill_into(rng, &mut self.unit);
                self.filled += self.unit.len();
            }
        }
        self.cursor = 0;
    }
}

impl Default for SvtScratch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_noise::rng::rng_from_seed;

    #[test]
    fn fill_noisy_adds_answers_to_batch_noise() {
        let answers = [10.0, 20.0, 30.0];
        let mut scratch = TopKScratch::new();
        scratch.fill_noisy(&answers, 2.0, &mut rng_from_seed(1));
        let noise = Laplace::new(2.0)
            .unwrap()
            .sample_n(&mut rng_from_seed(1), 3);
        for i in 0..3 {
            assert_eq!(scratch.noisy[i], answers[i] + noise[i]);
        }
    }

    #[test]
    fn fill_noisy_shrinks_and_grows_with_workload() {
        let mut scratch = TopKScratch::new();
        scratch.fill_noisy(&[1.0; 10], 1.0, &mut rng_from_seed(2));
        assert_eq!(scratch.noisy.len(), 10);
        scratch.fill_noisy(&[1.0; 3], 1.0, &mut rng_from_seed(2));
        assert_eq!(scratch.noisy.len(), 3);
    }

    #[test]
    fn svt_scratch_replays_the_sequential_unit_stream() {
        let unit = Laplace::new(1.0).unwrap();
        let mut expect_rng = rng_from_seed(3);
        let mut scratch = SvtScratch::new();
        let mut rng = rng_from_seed(3);
        scratch.begin();
        for i in 0..1000 {
            let got = scratch.next_unit(&mut rng);
            let want = unit.sample(&mut expect_rng);
            assert_eq!(got, want, "draw {i}");
        }
    }

    #[test]
    fn begin_discards_stale_buffered_draws() {
        let mut scratch = SvtScratch::new();
        scratch.begin();
        let first = scratch.next_unit(&mut rng_from_seed(4));
        // New run, new stream: must not serve leftovers from seed 4.
        scratch.begin();
        let fresh = scratch.next_unit(&mut rng_from_seed(5));
        let want = Laplace::new(1.0).unwrap().sample(&mut rng_from_seed(5));
        assert_eq!(fresh, want);
        assert_ne!(first, fresh);
    }

    #[test]
    fn peek_pairs_preserve_sequential_order_across_refills() {
        let unit = Laplace::new(1.0).unwrap();
        let mut expect_rng = rng_from_seed(7);
        let mut scratch = SvtScratch::new();
        let mut rng = rng_from_seed(7);
        scratch.begin();
        // Odd leading draw forces the pair path to carry a leftover across
        // every refill boundary (MIN_CHUNK is even).
        let first = scratch.next_unit(&mut rng);
        assert_eq!(first, unit.sample(&mut expect_rng));
        let mut pairs_seen = 0usize;
        while pairs_seen < 500 {
            let block = scratch.peek_pairs(&mut rng);
            assert!(block.len() >= 2 && block.len().is_multiple_of(2));
            // Consume only part of some blocks to exercise partial commits.
            let take = (block.len() / 2).min(3) * 2;
            for pair in block[..take].chunks_exact(2) {
                let (a, b) = (pair[0] * 2.0, pair[1] * 3.0);
                assert_eq!(
                    a,
                    unit.sample(&mut expect_rng) * 2.0,
                    "pair {pairs_seen} first"
                );
                assert_eq!(
                    b,
                    unit.sample(&mut expect_rng) * 3.0,
                    "pair {pairs_seen} second"
                );
                pairs_seen += 1;
            }
            scratch.consume(take);
        }
    }

    #[test]
    fn prefill_tracks_previous_consumption() {
        let mut scratch = SvtScratch::new();
        let mut rng = rng_from_seed(6);
        scratch.begin();
        for _ in 0..1000 {
            scratch.next_unit(&mut rng);
        }
        // Next run's first batch should be sized like the last run...
        scratch.begin();
        assert_eq!(scratch.predicted, 1000);
        scratch.next_unit(&mut rng);
        assert_eq!(scratch.unit.len(), 1000);
        // ...and a run that uses almost none leaves only marginal waste.
        scratch.begin();
        scratch.next_unit(&mut rng);
        scratch.begin();
        assert_eq!(scratch.predicted, SvtScratch::MIN_CHUNK);
    }
}
