//! Reusable scratch buffers for the allocation-free mechanism fast paths.
//!
//! The `run` methods on each mechanism draw noise through `dyn NoiseSource`
//! — one virtual call and one `Laplace::new` per draw — and allocate a fresh
//! noisy-value vector per run. That is the right shape for the alignment
//! checker (which must interpose on every draw), but it is pure overhead for
//! Monte-Carlo loops that execute the same mechanism tens of thousands of
//! times on workloads with up to ~100k queries (§7 of the paper).
//!
//! The `run_with_scratch` entry points take one of the scratch types below
//! and a plain [`rand::Rng`]:
//!
//! * noise is drawn **in batches** via
//!   [`ContinuousDistribution::fill_into`], not draw-by-draw;
//! * noisy-value buffers live in the scratch and are **reused across runs**;
//! * the RNG is a **monomorphic** generic parameter, so the whole inner loop
//!   inlines — no `dyn` dispatch anywhere.
//!
//! Outputs are guaranteed **bit-for-bit identical** to the corresponding
//! allocating path run against the same RNG stream (asserted by the
//! `scratch_equivalence` test-suite). The SVT mechanisms' streaming entry
//! points (`run_streaming_with_scratch`) share the same scratch: lookahead
//! applies to *noise* only — query answers are pulled strictly on demand
//! and never buffered ahead of the mechanism's halting point.
//!
//! ## Stream discipline
//!
//! An [`SvtScratch`] entry point buffers lookahead from the stream it is
//! given, and *how much* depends on the scratch's consumption history (the
//! prediction that sizes its batches). Outputs are unaffected — they depend
//! only on the draws actually served — but the stream's final position is
//! not reproducible across scratch histories. Two rules keep everything
//! deterministic:
//!
//! 1. derive a fresh stream per run
//!    ([`free_gap_noise::rng::derive_stream`]), and
//! 2. make the scratch call the **last** consumer of that stream — when one
//!    run executes several mechanisms, give each its own sub-stream (e.g.
//!    seed one from a `rng.gen::<u64>()` drawn up front) instead of running
//!    them back-to-back on a shared stream.
//!
//! [`TopKScratch`] draws exactly `n` variates (no lookahead), so it is
//! exempt from rule 2 — which is what lets the Top-K pipeline stay
//! bit-identical end-to-end.
//!
//! ```
//! use free_gap_core::answers::QueryAnswers;
//! use free_gap_core::noisy_max::NoisyTopKWithGap;
//! use free_gap_core::scratch::TopKScratch;
//! use free_gap_noise::rng::derive_stream;
//!
//! let answers = QueryAnswers::counting(vec![120.0, 40.0, 97.0, 80.0, 3.0]);
//! let mech = NoisyTopKWithGap::new(3, 1.0, true).unwrap();
//! let mut scratch = TopKScratch::new();
//! for run in 0..100 {
//!     let out = mech.run_with_scratch(&answers, &mut derive_stream(7, run), &mut scratch);
//!     assert_eq!(out.items.len(), 3);
//! }
//! ```

use free_gap_noise::{BlockBuffer, ContinuousDistribution, Laplace};
use rand::Rng;

/// Reusable buffers for the Noisy Top-K family's batched fast path.
///
/// Holds the noisy-answer vector (length `n`) and the selection buffer
/// (length `k + 1`); both are grown on first use and reused afterwards.
#[derive(Debug, Default, Clone)]
pub struct TopKScratch {
    pub(crate) noisy: Vec<f64>,
    pub(crate) top: Vec<usize>,
}

impl TopKScratch {
    /// Creates an empty scratch (buffers grow on first run).
    pub fn new() -> Self {
        Self::default()
    }

    /// Fills `noisy` with `answers[i] + Lap(scale)` via the batched
    /// [`ContinuousDistribution::fill_into_offset`] — noise generation and
    /// the `+ q` offset fused, so the `n`-sized buffer is written exactly
    /// once (at `n = 100k` a second pass is measurable memory traffic).
    pub(crate) fn fill_noisy<R: Rng + ?Sized>(&mut self, answers: &[f64], scale: f64, rng: &mut R) {
        let lap = Laplace::new(scale).expect("mechanism-validated scale");
        self.noisy.resize(answers.len(), 0.0);
        lap.fill_into_offset(rng, answers, &mut self.noisy);
    }
}

/// Reusable unit-noise buffer for the Sparse Vector family's batched fast
/// and streaming paths.
///
/// SVT draws at several scales (threshold noise, per-branch query noise), so
/// the scratch buffers *unit* `Lap(1)` draws and rescales per draw — IEEE
/// multiplication makes `unit * scale` bit-identical to drawing
/// `Lap(scale)` directly, while the [`BlockBuffer`]'s blocked `fill_into`
/// passes amortize the sampling loop. Block sizing (first block from the
/// previous run's consumption, later blocks tapered and cache-clamped) lives
/// in [`BlockBuffer`]; this type pins the distribution to unit Laplace and
/// exposes the draw shapes the SVT mechanisms need: single scaled draws,
/// pairs (Algorithm 2's `(ξ, η)`), and general m-tuples (the multi-branch
/// ladder).
#[derive(Debug, Clone)]
pub struct SvtScratch {
    block: BlockBuffer,
    unit: Laplace,
}

impl SvtScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self {
            block: BlockBuffer::new(),
            unit: Laplace::new(1.0).expect("unit scale is valid"),
        }
    }

    /// Starts a new run: discards draws buffered from the previous RNG
    /// stream and predicts this run's consumption from the last one.
    pub(crate) fn begin(&mut self) {
        self.block.begin();
    }

    /// Next unit-Laplace draw, refilling the buffer in blocks as needed.
    #[inline]
    pub(crate) fn next_unit<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        self.block.next(&self.unit, rng)
    }

    /// Next `Lap(scale)` draw (bit-identical to sampling at `scale`).
    #[inline]
    pub(crate) fn next_scaled<R: Rng + ?Sized>(&mut self, rng: &mut R, scale: f64) -> f64 {
        self.next_unit(rng) * scale
    }

    /// Predicted draw consumption of the current run (last run's usage) —
    /// used by mechanisms to pre-size their output buffers.
    pub(crate) fn predicted_draws(&self) -> usize {
        self.block.predicted_draws()
    }

    /// The buffered unit draws ahead of the cursor, truncated to whole
    /// pairs — see [`BlockBuffer::peek_tuples`].
    #[inline]
    pub(crate) fn peek_pairs<R: Rng + ?Sized>(&mut self, rng: &mut R) -> &[f64] {
        self.block.peek_tuples(&self.unit, rng, 2)
    }

    /// The buffered unit draws ahead of the cursor, truncated to whole
    /// `m`-tuples (one tuple per query for the m-branch mechanisms) — see
    /// [`BlockBuffer::peek_tuples`].
    #[inline]
    pub(crate) fn peek_tuples<R: Rng + ?Sized>(&mut self, rng: &mut R, m: usize) -> &[f64] {
        self.block.peek_tuples(&self.unit, rng, m)
    }

    /// Advances the cursor past `draws` units previously obtained from
    /// [`peek_pairs`](Self::peek_pairs) / [`peek_tuples`](Self::peek_tuples).
    #[inline]
    pub(crate) fn consume(&mut self, draws: usize) {
        self.block.consume(draws);
    }
}

impl Default for SvtScratch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_noise::rng::rng_from_seed;

    #[test]
    fn fill_noisy_adds_answers_to_batch_noise() {
        let answers = [10.0, 20.0, 30.0];
        let mut scratch = TopKScratch::new();
        scratch.fill_noisy(&answers, 2.0, &mut rng_from_seed(1));
        let noise = Laplace::new(2.0)
            .unwrap()
            .sample_n(&mut rng_from_seed(1), 3);
        for i in 0..3 {
            assert_eq!(scratch.noisy[i], answers[i] + noise[i]);
        }
    }

    #[test]
    fn fill_noisy_shrinks_and_grows_with_workload() {
        let mut scratch = TopKScratch::new();
        scratch.fill_noisy(&[1.0; 10], 1.0, &mut rng_from_seed(2));
        assert_eq!(scratch.noisy.len(), 10);
        scratch.fill_noisy(&[1.0; 3], 1.0, &mut rng_from_seed(2));
        assert_eq!(scratch.noisy.len(), 3);
    }

    #[test]
    fn svt_scratch_replays_the_sequential_unit_stream() {
        let unit = Laplace::new(1.0).unwrap();
        let mut expect_rng = rng_from_seed(3);
        let mut scratch = SvtScratch::new();
        let mut rng = rng_from_seed(3);
        scratch.begin();
        for i in 0..1000 {
            let got = scratch.next_unit(&mut rng);
            let want = unit.sample(&mut expect_rng);
            assert_eq!(got, want, "draw {i}");
        }
    }

    #[test]
    fn prefill_tracks_previous_consumption() {
        // Block sizing internals are covered in `free_gap_noise::block`;
        // here we only pin that the scratch forwards the prediction.
        let mut scratch = SvtScratch::new();
        let mut rng = rng_from_seed(6);
        scratch.begin();
        for _ in 0..1000 {
            scratch.next_unit(&mut rng);
        }
        scratch.begin();
        assert_eq!(scratch.predicted_draws(), 1000);
    }

    #[test]
    fn peek_tuples_preserve_sequential_order() {
        // Forwarding check for the tuple/pair API (peek_pairs is
        // peek_tuples(2)): the served stream equals sequential unit draws.
        // Refill/leftover edge cases live in `free_gap_noise::block`.
        let unit = Laplace::new(1.0).unwrap();
        let m = 3usize;
        let mut expect_rng = rng_from_seed(21);
        let mut scratch = SvtScratch::new();
        let mut rng = rng_from_seed(21);
        scratch.begin();
        let mut tuples_seen = 0usize;
        while tuples_seen < 200 {
            let slab = scratch.peek_tuples(&mut rng, m);
            assert!(slab.len() >= m && slab.len().is_multiple_of(m));
            let take = (slab.len() / m).min(2) * m;
            for tuple in slab[..take].chunks_exact(m) {
                for &v in tuple {
                    assert_eq!(v, unit.sample(&mut expect_rng), "tuple {tuples_seen}");
                }
                tuples_seen += 1;
            }
            scratch.consume(take);
        }
    }
}
