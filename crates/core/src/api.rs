//! The unified mechanism-call surface: one request/response shape over
//! every selection and measurement mechanism in the grid.
//!
//! Historically each mechanism exposed its own entry-point family
//! (`run`, `run_with_scratch[_into]`, `run_streaming…`), and every caller
//! that wanted to treat mechanisms uniformly — the benchmark grid, the
//! serving layer — hand-rolled a dispatch table of closures. This module
//! folds that dispatch into the type system:
//!
//! * [`Mechanism`] — the one-call trait: a query slice in, a
//!   [`MechanismOutput`] out, noise through any [`DrawProvider`].
//! * [`AnyMechanism`] — a closed enum over the ten grid mechanisms
//!   (`MECHANISM_PATHS` in the benchmark), dispatching [`Mechanism::call`]
//!   plus the two provider-choosing conveniences
//!   [`call_batched`](AnyMechanism::call_batched) (the fast path a server
//!   worker drives) and [`call_reference`](AnyMechanism::call_reference)
//!   (the dyn `NoiseSource` reference path).
//!
//! Design note — why `call` takes a scratch parameter where the obvious
//! sketch would not: the selection mechanisms need `n`- and `k`-sized
//! buffers, and `&self` receivers (the mechanisms are `Copy` parameter
//! packs) cannot own them. Threading one [`TopKScratch`] through the call
//! keeps the trait allocation-free across requests — the same pattern the
//! `*_with_scratch_into` entry points already use — while the SVT family's
//! noise tape rides inside the provider ([`ScratchDraws`]) instead. The
//! old entry points remain and stay bit-identical: `call` goes through the
//! very same `run_core` bodies (`tests/api_surface.rs` pins this).

use crate::draw::{DrawProvider, ParallelDraws, RngDraws, ScratchDraws, SourceDraws};
use crate::error::MechanismError;
use crate::exponential_mech::ExponentialMechanism;
use crate::noisy_max::{ClassicNoisyTopK, DiscreteNoisyTopKWithGap, NoisyTopKWithGap, TopKOutput};
use crate::scratch::{SvtScratch, TopKScratch};
use crate::sparse_vector::{
    AdaptiveOutcome, AdaptiveSparseVector, AdaptiveSvOutput, ClassicSparseVector,
    DiscreteSparseVectorWithGap, MultiBranchAdaptiveSparseVector, MultiBranchOutcome,
    MultiBranchSvOutput, SparseVectorWithGap, SvOutput,
};
use crate::staircase_mech::StaircaseMechanism;
use free_gap_alignment::SamplingSource;
use free_gap_noise::rng::splitmix64;
use rand::rngs::StdRng;
use rand::Rng;

/// A borrowed query workload — the one request payload every mechanism
/// accepts. Selection mechanisms read it as query answers to select over;
/// measurement mechanisms read it as values to perturb.
#[derive(Debug, Clone, Copy)]
pub struct QuerySlice<'a> {
    values: &'a [f64],
}

impl<'a> QuerySlice<'a> {
    /// Wraps a slice of query answers.
    pub fn new(values: &'a [f64]) -> Self {
        Self { values }
    }

    /// Borrows the values of a [`crate::QueryAnswers`] workload.
    pub fn from_answers(answers: &'a crate::QueryAnswers) -> Self {
        Self {
            values: answers.values(),
        }
    }

    /// The raw answer values.
    pub fn values(&self) -> &'a [f64] {
        self.values
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// The one response payload: a closed union of every mechanism output
/// shape in the grid.
///
/// Callers keep one `MechanismOutput` alive across requests and let
/// [`Mechanism::call`] coerce it: when the live variant already matches
/// the mechanism's shape its buffers are reused in place, so a worker
/// serving a mixed request stream only allocates on variant switches.
#[derive(Debug, Clone, PartialEq)]
pub enum MechanismOutput {
    /// Selected indices with free gaps (Noisy-Top-K-with-Gap family).
    TopK(TopKOutput),
    /// Selected indices only (classic Top-K, exponential mechanism).
    Indices(Vec<usize>),
    /// Per-query `⊤`/`⊥` decisions with optional gaps (SVT family).
    SparseVector(SvOutput),
    /// Adaptive SVT outcomes with budget accounting (Algorithm 2).
    Adaptive(AdaptiveSvOutput),
    /// Multi-branch adaptive SVT outcomes.
    MultiBranch(MultiBranchSvOutput),
    /// Perturbed measurement values (staircase/Laplace measurement).
    Measurements(Vec<f64>),
}

/// Coerces `$self` to `$variant` (installing `$empty` only on a variant
/// switch) and returns the inner value mutably.
macro_rules! coerce_output {
    ($self:ident, $variant:ident, $empty:expr) => {{
        if !matches!($self, Self::$variant(_)) {
            *$self = Self::$variant($empty);
        }
        match $self {
            Self::$variant(inner) => inner,
            // lint:allow(panic-freedom): the variant was installed two lines above; this arm cannot be reached
            _ => unreachable!(),
        }
    }};
}

impl MechanismOutput {
    /// An empty output of the shape `mechanism` produces.
    pub fn new_for(mechanism: &AnyMechanism) -> Self {
        match mechanism {
            AnyMechanism::NoisyTopKWithGap(_) | AnyMechanism::DiscreteNoisyTopKWithGap(_) => {
                Self::TopK(TopKOutput { items: Vec::new() })
            }
            AnyMechanism::ClassicNoisyTopK(_) | AnyMechanism::Exponential(_) => {
                Self::Indices(Vec::new())
            }
            AnyMechanism::SparseVectorWithGap(_)
            | AnyMechanism::ClassicSparseVector(_)
            | AnyMechanism::DiscreteSparseVectorWithGap(_) => {
                Self::SparseVector(SvOutput { above: Vec::new() })
            }
            AnyMechanism::AdaptiveSparseVector(m) => Self::Adaptive(AdaptiveSvOutput {
                outcomes: Vec::new(),
                spent: 0.0,
                epsilon: m.epsilon(),
            }),
            AnyMechanism::MultiBranchAdaptiveSparseVector(m) => {
                Self::MultiBranch(MultiBranchSvOutput {
                    outcomes: Vec::new(),
                    spent: 0.0,
                    epsilon: m.epsilon(),
                })
            }
            AnyMechanism::Staircase(_) => Self::Measurements(Vec::new()),
        }
    }

    /// Coerces to the [`TopK`](Self::TopK) variant, reusing buffers when
    /// the variant already matches.
    pub fn top_k_mut(&mut self) -> &mut TopKOutput {
        coerce_output!(self, TopK, TopKOutput { items: Vec::new() })
    }

    /// Coerces to the [`Indices`](Self::Indices) variant.
    pub fn indices_mut(&mut self) -> &mut Vec<usize> {
        coerce_output!(self, Indices, Vec::new())
    }

    /// Coerces to the [`SparseVector`](Self::SparseVector) variant.
    pub fn sparse_vector_mut(&mut self) -> &mut SvOutput {
        coerce_output!(self, SparseVector, SvOutput { above: Vec::new() })
    }

    /// Coerces to the [`Adaptive`](Self::Adaptive) variant.
    pub fn adaptive_mut(&mut self) -> &mut AdaptiveSvOutput {
        coerce_output!(
            self,
            Adaptive,
            AdaptiveSvOutput {
                outcomes: Vec::new(),
                spent: 0.0,
                epsilon: 0.0,
            }
        )
    }

    /// Coerces to the [`MultiBranch`](Self::MultiBranch) variant.
    pub fn multi_branch_mut(&mut self) -> &mut MultiBranchSvOutput {
        coerce_output!(
            self,
            MultiBranch,
            MultiBranchSvOutput {
                outcomes: Vec::new(),
                spent: 0.0,
                epsilon: 0.0,
            }
        )
    }

    /// Coerces to the [`Measurements`](Self::Measurements) variant.
    pub fn measurements_mut(&mut self) -> &mut Vec<f64> {
        coerce_output!(self, Measurements, Vec::new())
    }

    /// Order-sensitive 64-bit fingerprint of the output, seeded by `seed` —
    /// the serving benchmark folds these across a request stream to pin
    /// bit-reproducibility without storing every response.
    pub fn digest(&self, seed: u64) -> u64 {
        fn mix(acc: u64, v: u64) -> u64 {
            let mut s = acc ^ v.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            splitmix64(&mut s)
        }
        let mut acc = mix(seed, self.variant_tag());
        match self {
            Self::TopK(o) => {
                for item in &o.items {
                    acc = mix(acc, item.index as u64);
                    acc = mix(acc, item.gap.to_bits());
                }
            }
            Self::Indices(indices) => {
                for &i in indices {
                    acc = mix(acc, i as u64);
                }
            }
            Self::SparseVector(o) => {
                for d in &o.above {
                    acc = match d {
                        Some(gap) => mix(mix(acc, 1), gap.to_bits()),
                        None => mix(acc, 2),
                    };
                }
            }
            Self::Adaptive(o) => {
                for outcome in &o.outcomes {
                    acc = match outcome {
                        AdaptiveOutcome::Above { gap, branch, cost } => {
                            let tag = match branch {
                                crate::sparse_vector::Branch::Top => 3,
                                crate::sparse_vector::Branch::Middle => 4,
                            };
                            mix(mix(mix(acc, tag), gap.to_bits()), cost.to_bits())
                        }
                        AdaptiveOutcome::Below => mix(acc, 2),
                    };
                }
                acc = mix(acc, o.spent.to_bits());
            }
            Self::MultiBranch(o) => {
                for outcome in &o.outcomes {
                    acc = match outcome {
                        MultiBranchOutcome::Above { branch, gap, cost } => mix(
                            mix(mix(mix(acc, 5), *branch as u64), gap.to_bits()),
                            cost.to_bits(),
                        ),
                        MultiBranchOutcome::Below => mix(acc, 2),
                    };
                }
                acc = mix(acc, o.spent.to_bits());
            }
            Self::Measurements(values) => {
                for v in values {
                    acc = mix(acc, v.to_bits());
                }
            }
        }
        acc
    }

    fn variant_tag(&self) -> u64 {
        match self {
            Self::TopK(_) => 1,
            Self::Indices(_) => 2,
            Self::SparseVector(_) => 3,
            Self::Adaptive(_) => 4,
            Self::MultiBranch(_) => 5,
            Self::Measurements(_) => 6,
        }
    }
}

/// The unified call surface: every grid mechanism answers a query slice
/// through an arbitrary [`DrawProvider`] into a coercible
/// [`MechanismOutput`].
pub trait Mechanism {
    /// Stable mechanism name (matches the benchmark grid's row names).
    fn name(&self) -> &'static str;

    /// The privacy budget `ε` one call costs — what a serving ledger
    /// debits before the call runs.
    fn cost(&self) -> f64;

    /// Runs the mechanism once. Noise flows through `provider`; selection
    /// buffers come from `scratch`; `out` is coerced to the mechanism's
    /// output shape (buffers reused when it already matches).
    fn call<P: DrawProvider>(
        &self,
        req: &QuerySlice<'_>,
        provider: &mut P,
        scratch: &mut TopKScratch,
        out: &mut MechanismOutput,
    ) -> Result<(), MechanismError>;
}

impl Mechanism for NoisyTopKWithGap {
    fn name(&self) -> &'static str {
        "NoisyTopKWithGap"
    }

    fn cost(&self) -> f64 {
        self.epsilon()
    }

    fn call<P: DrawProvider>(
        &self,
        req: &QuerySlice<'_>,
        provider: &mut P,
        scratch: &mut TopKScratch,
        out: &mut MechanismOutput,
    ) -> Result<(), MechanismError> {
        self.run_core(req.values(), provider, scratch, out.top_k_mut())
    }
}

impl Mechanism for ClassicNoisyTopK {
    fn name(&self) -> &'static str {
        "ClassicNoisyTopK"
    }

    fn cost(&self) -> f64 {
        self.epsilon()
    }

    fn call<P: DrawProvider>(
        &self,
        req: &QuerySlice<'_>,
        provider: &mut P,
        scratch: &mut TopKScratch,
        out: &mut MechanismOutput,
    ) -> Result<(), MechanismError> {
        self.run_core(req.values(), provider, scratch, out.indices_mut())
    }
}

impl Mechanism for DiscreteNoisyTopKWithGap {
    fn name(&self) -> &'static str {
        "DiscreteNoisyTopKWithGap"
    }

    fn cost(&self) -> f64 {
        self.epsilon()
    }

    fn call<P: DrawProvider>(
        &self,
        req: &QuerySlice<'_>,
        provider: &mut P,
        scratch: &mut TopKScratch,
        out: &mut MechanismOutput,
    ) -> Result<(), MechanismError> {
        self.run_core(req.values(), provider, scratch, out.top_k_mut())
    }
}

/// The exponential mechanism lifted to a Top-K selection by peeling
/// (`k` sequential draws, each costing the base mechanism's `ε`) — the
/// same composition `ExponentialMechanism::run_top_k` uses, packaged with
/// its `k` so it fits the one-call surface.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExponentialTopK {
    mech: ExponentialMechanism,
    k: usize,
}

impl ExponentialTopK {
    /// Wraps `mech` with the selection size `k ≥ 1`.
    pub fn new(mech: ExponentialMechanism, k: usize) -> Result<Self, MechanismError> {
        if k == 0 {
            return Err(MechanismError::InvalidK {
                k,
                requirement: "k must be at least 1",
            });
        }
        Ok(Self { mech, k })
    }

    /// The selection size `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The wrapped base mechanism.
    pub fn mechanism(&self) -> &ExponentialMechanism {
        &self.mech
    }
}

impl Mechanism for ExponentialTopK {
    fn name(&self) -> &'static str {
        "ExponentialMechanism"
    }

    fn cost(&self) -> f64 {
        self.k as f64 * self.mech.epsilon()
    }

    fn call<P: DrawProvider>(
        &self,
        req: &QuerySlice<'_>,
        provider: &mut P,
        scratch: &mut TopKScratch,
        out: &mut MechanismOutput,
    ) -> Result<(), MechanismError> {
        ExponentialMechanism::require_top_k_len(req.len(), self.k)?;
        self.mech.race_core(
            req.values().iter().copied(),
            self.k,
            provider,
            &mut scratch.noisy,
            &mut scratch.top,
        )?;
        let indices = out.indices_mut();
        indices.clear();
        indices.extend_from_slice(&scratch.top);
        Ok(())
    }
}

impl Mechanism for StaircaseMechanism {
    fn name(&self) -> &'static str {
        "StaircaseMechanism"
    }

    fn cost(&self) -> f64 {
        self.epsilon()
    }

    fn call<P: DrawProvider>(
        &self,
        req: &QuerySlice<'_>,
        provider: &mut P,
        _scratch: &mut TopKScratch,
        out: &mut MechanismOutput,
    ) -> Result<(), MechanismError> {
        self.measure_core(req.values(), provider, out.measurements_mut());
        Ok(())
    }
}

impl Mechanism for SparseVectorWithGap {
    fn name(&self) -> &'static str {
        "SparseVectorWithGap"
    }

    fn cost(&self) -> f64 {
        self.epsilon()
    }

    fn call<P: DrawProvider>(
        &self,
        req: &QuerySlice<'_>,
        provider: &mut P,
        _scratch: &mut TopKScratch,
        out: &mut MechanismOutput,
    ) -> Result<(), MechanismError> {
        self.run_values_core(req.values(), provider, out.sparse_vector_mut());
        Ok(())
    }
}

impl Mechanism for ClassicSparseVector {
    fn name(&self) -> &'static str {
        "ClassicSparseVector"
    }

    fn cost(&self) -> f64 {
        self.epsilon()
    }

    fn call<P: DrawProvider>(
        &self,
        req: &QuerySlice<'_>,
        provider: &mut P,
        _scratch: &mut TopKScratch,
        out: &mut MechanismOutput,
    ) -> Result<(), MechanismError> {
        self.run_core(
            req.values().iter().copied(),
            provider,
            false,
            out.sparse_vector_mut(),
        );
        Ok(())
    }
}

impl Mechanism for AdaptiveSparseVector {
    fn name(&self) -> &'static str {
        "AdaptiveSparseVector"
    }

    fn cost(&self) -> f64 {
        self.epsilon()
    }

    fn call<P: DrawProvider>(
        &self,
        req: &QuerySlice<'_>,
        provider: &mut P,
        _scratch: &mut TopKScratch,
        out: &mut MechanismOutput,
    ) -> Result<(), MechanismError> {
        self.run_core(req.values().iter().copied(), provider, out.adaptive_mut());
        Ok(())
    }
}

impl Mechanism for MultiBranchAdaptiveSparseVector {
    fn name(&self) -> &'static str {
        "MultiBranchAdaptiveSparseVector"
    }

    fn cost(&self) -> f64 {
        self.epsilon()
    }

    fn call<P: DrawProvider>(
        &self,
        req: &QuerySlice<'_>,
        provider: &mut P,
        _scratch: &mut TopKScratch,
        out: &mut MechanismOutput,
    ) -> Result<(), MechanismError> {
        self.run_core(
            req.values().iter().copied(),
            provider,
            out.multi_branch_mut(),
        );
        Ok(())
    }
}

impl Mechanism for DiscreteSparseVectorWithGap {
    fn name(&self) -> &'static str {
        "DiscreteSparseVectorWithGap"
    }

    fn cost(&self) -> f64 {
        self.epsilon()
    }

    fn call<P: DrawProvider>(
        &self,
        req: &QuerySlice<'_>,
        provider: &mut P,
        _scratch: &mut TopKScratch,
        out: &mut MechanismOutput,
    ) -> Result<(), MechanismError> {
        self.run_core(
            req.values().iter().copied(),
            provider,
            out.sparse_vector_mut(),
        );
        Ok(())
    }
}

/// Reusable per-worker buffers for [`AnyMechanism::call_batched`]: the
/// selection scratch plus the SVT/staircase noise tape, so one worker
/// serves the whole grid without per-request allocation.
#[derive(Debug, Default, Clone)]
pub struct CallScratch {
    /// Selection buffers (Top-K family, exponential mechanism).
    pub topk: TopKScratch,
    /// Blocked noise tape (SVT family, staircase measurement).
    pub svt: SvtScratch,
}

impl CallScratch {
    /// Fresh, empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Closed union of the ten grid mechanisms — the dispatch type behind the
/// unified call surface (one variant per `MECHANISM_PATHS` row).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AnyMechanism {
    /// Algorithm 1: Noisy-Top-K-with-Gap.
    NoisyTopKWithGap(NoisyTopKWithGap),
    /// Classic Noisy Top-K baseline (no gaps).
    ClassicNoisyTopK(ClassicNoisyTopK),
    /// Discrete (geometric-noise) Noisy-Top-K-with-Gap.
    DiscreteNoisyTopKWithGap(DiscreteNoisyTopKWithGap),
    /// Exponential mechanism, peeled to Top-K.
    Exponential(ExponentialTopK),
    /// Staircase measurement mechanism.
    Staircase(StaircaseMechanism),
    /// Sparse-Vector-with-Gap.
    SparseVectorWithGap(SparseVectorWithGap),
    /// Classic SVT baseline.
    ClassicSparseVector(ClassicSparseVector),
    /// Adaptive-SVT-with-Gap (Algorithm 2).
    AdaptiveSparseVector(AdaptiveSparseVector),
    /// Multi-branch generalization of Algorithm 2.
    MultiBranchAdaptiveSparseVector(MultiBranchAdaptiveSparseVector),
    /// Discrete (geometric-noise) SVT-with-Gap.
    DiscreteSparseVectorWithGap(DiscreteSparseVectorWithGap),
}

impl Mechanism for AnyMechanism {
    fn name(&self) -> &'static str {
        match self {
            Self::NoisyTopKWithGap(m) => m.name(),
            Self::ClassicNoisyTopK(m) => m.name(),
            Self::DiscreteNoisyTopKWithGap(m) => m.name(),
            Self::Exponential(m) => m.name(),
            Self::Staircase(m) => m.name(),
            Self::SparseVectorWithGap(m) => m.name(),
            Self::ClassicSparseVector(m) => m.name(),
            Self::AdaptiveSparseVector(m) => m.name(),
            Self::MultiBranchAdaptiveSparseVector(m) => m.name(),
            Self::DiscreteSparseVectorWithGap(m) => m.name(),
        }
    }

    fn cost(&self) -> f64 {
        match self {
            Self::NoisyTopKWithGap(m) => m.cost(),
            Self::ClassicNoisyTopK(m) => m.cost(),
            Self::DiscreteNoisyTopKWithGap(m) => m.cost(),
            Self::Exponential(m) => m.cost(),
            Self::Staircase(m) => m.cost(),
            Self::SparseVectorWithGap(m) => m.cost(),
            Self::ClassicSparseVector(m) => m.cost(),
            Self::AdaptiveSparseVector(m) => m.cost(),
            Self::MultiBranchAdaptiveSparseVector(m) => m.cost(),
            Self::DiscreteSparseVectorWithGap(m) => m.cost(),
        }
    }

    fn call<P: DrawProvider>(
        &self,
        req: &QuerySlice<'_>,
        provider: &mut P,
        scratch: &mut TopKScratch,
        out: &mut MechanismOutput,
    ) -> Result<(), MechanismError> {
        match self {
            Self::NoisyTopKWithGap(m) => m.call(req, provider, scratch, out),
            Self::ClassicNoisyTopK(m) => m.call(req, provider, scratch, out),
            Self::DiscreteNoisyTopKWithGap(m) => m.call(req, provider, scratch, out),
            Self::Exponential(m) => m.call(req, provider, scratch, out),
            Self::Staircase(m) => m.call(req, provider, scratch, out),
            Self::SparseVectorWithGap(m) => m.call(req, provider, scratch, out),
            Self::ClassicSparseVector(m) => m.call(req, provider, scratch, out),
            Self::AdaptiveSparseVector(m) => m.call(req, provider, scratch, out),
            Self::MultiBranchAdaptiveSparseVector(m) => m.call(req, provider, scratch, out),
            Self::DiscreteSparseVectorWithGap(m) => m.call(req, provider, scratch, out),
        }
    }
}

impl AnyMechanism {
    /// True for the mechanisms whose fast path draws noise off the blocked
    /// [`ScratchDraws`] tape (SVT family, staircase); the rest draw exact
    /// through [`RngDraws`]. This mirrors the provider each mechanism's
    /// historical `*_with_scratch` entry point chose, which is what keeps
    /// [`call_batched`](Self::call_batched) bit-identical to them.
    fn uses_tape(&self) -> bool {
        matches!(
            self,
            Self::Staircase(_)
                | Self::SparseVectorWithGap(_)
                | Self::ClassicSparseVector(_)
                | Self::AdaptiveSparseVector(_)
                | Self::MultiBranchAdaptiveSparseVector(_)
                | Self::DiscreteSparseVectorWithGap(_)
        )
    }

    /// The batched fast path: [`Mechanism::call`] through each mechanism's
    /// historical fast provider ([`RngDraws`] for the selection
    /// mechanisms, the blocked [`ScratchDraws`] tape for SVT/staircase).
    /// Bit-identical to the mechanism's own `*_with_scratch` entry point
    /// on the same RNG stream.
    pub fn call_batched<R: Rng + ?Sized>(
        &self,
        req: &QuerySlice<'_>,
        rng: &mut R,
        scratch: &mut CallScratch,
        out: &mut MechanismOutput,
    ) -> Result<(), MechanismError> {
        if self.uses_tape() {
            let mut provider = ScratchDraws::new(&mut scratch.svt, rng);
            self.call(req, &mut provider, &mut scratch.topk, out)
        } else {
            self.call(req, &mut RngDraws::new(rng), &mut scratch.topk, out)
        }
    }

    /// The intra-run parallel path: [`Mechanism::call`] through a
    /// [`ParallelDraws`] provider over the per-block sub-stream layout.
    /// The Noisy-Max family gets a parallel noise fill plus the per-chunk
    /// selection reduce, the exponential race a batched parallel Gumbel
    /// fill with the race replayed over precomputed scores, staircase a
    /// parallel measurement fill; the SVT family runs sequentially off the
    /// provider's scalar tape (its adaptive threshold loop is inherently
    /// sequential). Bit-identical for any thread count of `par` — but a
    /// *different stream* than [`call_batched`](Self::call_batched): the
    /// run is keyed by the provider's run seed, so callers
    /// [`reset`](ParallelDraws::reset) `par` per request.
    pub fn call_par(
        &self,
        req: &QuerySlice<'_>,
        par: &mut ParallelDraws,
        scratch: &mut CallScratch,
        out: &mut MechanismOutput,
    ) -> Result<(), MechanismError> {
        match self {
            Self::Exponential(m) => {
                let indices = out.indices_mut();
                m.mechanism()
                    .race_par_core(req.values(), m.k(), par, &mut scratch.topk, indices)
            }
            _ => self.call(req, par, &mut scratch.topk, out),
        }
    }

    /// The dyn reference path: [`Mechanism::call`] through
    /// [`SourceDraws`] over a [`SamplingSource`], allocating fresh
    /// buffers per call — the historical per-draw-cost baseline the
    /// benchmark grid measures the fast paths against.
    pub fn call_reference(
        &self,
        req: &QuerySlice<'_>,
        rng: &mut StdRng,
        out: &mut MechanismOutput,
    ) -> Result<(), MechanismError> {
        let mut source = SamplingSource::new(rng);
        let mut provider = SourceDraws::new(&mut source);
        let mut scratch = TopKScratch::new();
        self.call(req, &mut provider, &mut scratch, out)
    }
}

impl From<NoisyTopKWithGap> for AnyMechanism {
    fn from(m: NoisyTopKWithGap) -> Self {
        Self::NoisyTopKWithGap(m)
    }
}

impl From<ClassicNoisyTopK> for AnyMechanism {
    fn from(m: ClassicNoisyTopK) -> Self {
        Self::ClassicNoisyTopK(m)
    }
}

impl From<DiscreteNoisyTopKWithGap> for AnyMechanism {
    fn from(m: DiscreteNoisyTopKWithGap) -> Self {
        Self::DiscreteNoisyTopKWithGap(m)
    }
}

impl From<ExponentialTopK> for AnyMechanism {
    fn from(m: ExponentialTopK) -> Self {
        Self::Exponential(m)
    }
}

impl From<StaircaseMechanism> for AnyMechanism {
    fn from(m: StaircaseMechanism) -> Self {
        Self::Staircase(m)
    }
}

impl From<SparseVectorWithGap> for AnyMechanism {
    fn from(m: SparseVectorWithGap) -> Self {
        Self::SparseVectorWithGap(m)
    }
}

impl From<ClassicSparseVector> for AnyMechanism {
    fn from(m: ClassicSparseVector) -> Self {
        Self::ClassicSparseVector(m)
    }
}

impl From<AdaptiveSparseVector> for AnyMechanism {
    fn from(m: AdaptiveSparseVector) -> Self {
        Self::AdaptiveSparseVector(m)
    }
}

impl From<MultiBranchAdaptiveSparseVector> for AnyMechanism {
    fn from(m: MultiBranchAdaptiveSparseVector) -> Self {
        Self::MultiBranchAdaptiveSparseVector(m)
    }
}

impl From<DiscreteSparseVectorWithGap> for AnyMechanism {
    fn from(m: DiscreteSparseVectorWithGap) -> Self {
        Self::DiscreteSparseVectorWithGap(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_coercion_reuses_matching_variant() {
        let mut out = MechanismOutput::Indices(vec![1, 2, 3]);
        out.indices_mut().push(4);
        assert_eq!(out, MechanismOutput::Indices(vec![1, 2, 3, 4]));
        // Variant switch replaces the payload.
        assert!(out.top_k_mut().items.is_empty());
        assert!(matches!(out, MechanismOutput::TopK(_)));
    }

    #[test]
    fn digest_is_order_and_value_sensitive() {
        let a = MechanismOutput::Measurements(vec![1.0, 2.0]);
        let b = MechanismOutput::Measurements(vec![2.0, 1.0]);
        let c = MechanismOutput::Measurements(vec![1.0, 2.0]);
        assert_ne!(a.digest(7), b.digest(7));
        assert_eq!(a.digest(7), c.digest(7));
        assert_ne!(a.digest(7), a.digest(8));
    }

    #[test]
    fn digest_distinguishes_empty_variants() {
        let a = MechanismOutput::Indices(Vec::new());
        let b = MechanismOutput::Measurements(Vec::new());
        assert_ne!(a.digest(0), b.digest(0));
    }

    #[test]
    fn call_par_is_bit_identical_across_thread_counts() {
        // Every grid mechanism, a workload large enough to engage both the
        // parallel fill (> one block) and the parallel select reduce
        // (> PAR_SELECT_MIN), and a fresh same-seed provider per call: the
        // digest must not depend on the thread count.
        let k = 5;
        let threshold = 500.0;
        #[allow(clippy::expect_used)]
        // lint:allow(panic-freedom): test-only grid construction with known-valid parameters
        let grid: Vec<AnyMechanism> = vec![
            NoisyTopKWithGap::new(k, 0.7, true).expect("valid").into(),
            ClassicNoisyTopK::new(k, 0.7, true).expect("valid").into(),
            DiscreteNoisyTopKWithGap::new(k, 0.7, true)
                .expect("valid")
                .into(),
            ExponentialTopK::new(ExponentialMechanism::new(0.7, true).expect("valid"), k)
                .expect("valid")
                .into(),
            StaircaseMechanism::new(0.7).expect("valid").into(),
            SparseVectorWithGap::new(k, 0.7, threshold, true)
                .expect("valid")
                .into(),
            ClassicSparseVector::new(k, 0.7, threshold, true)
                .expect("valid")
                .into(),
            AdaptiveSparseVector::new(k, 0.7, threshold, true)
                .expect("valid")
                .into(),
            MultiBranchAdaptiveSparseVector::new(k, 0.7, threshold, true, 3)
                .expect("valid")
                .into(),
            DiscreteSparseVectorWithGap::new(k, 0.7, threshold, true)
                .expect("valid")
                .into(),
        ];
        let mut s = 0x5EED_u64;
        let values: Vec<f64> = (0..9000)
            .map(|_| (splitmix64(&mut s) % 1_000) as f64)
            .collect();
        let req = QuerySlice::new(&values);
        for mech in &grid {
            let mut digests = Vec::new();
            for threads in [1usize, 2, 4] {
                let mut par = ParallelDraws::new(42, threads);
                let mut scratch = CallScratch::new();
                let mut out = MechanismOutput::new_for(mech);
                #[allow(clippy::expect_used)]
                // lint:allow(panic-freedom): test asserts the call succeeds
                mech.call_par(&req, &mut par, &mut scratch, &mut out)
                    .expect("call_par");
                digests.push(out.digest(7));
            }
            assert_eq!(digests[0], digests[1], "1 vs 2 threads: {}", mech.name());
            assert_eq!(digests[0], digests[2], "1 vs 4 threads: {}", mech.name());
        }
    }

    #[test]
    fn exponential_top_k_validates_k() {
        let m = ExponentialMechanism::new(1.0, true).unwrap();
        assert!(ExponentialTopK::new(m, 0).is_err());
        let wrapped = ExponentialTopK::new(m, 3).unwrap();
        assert_eq!(wrapped.k(), 3);
        assert!((wrapped.cost() - 3.0).abs() < 1e-12);
    }
}
