//! Error type for mechanism construction and execution.

use std::fmt;

/// Errors raised when configuring or running a mechanism.
#[derive(Debug, Clone, PartialEq)]
pub enum MechanismError {
    /// The privacy budget must be positive and finite.
    InvalidEpsilon {
        /// The rejected value.
        value: f64,
    },
    /// `k` must satisfy the documented bounds (e.g. `1 <= k < n` for
    /// Noisy-Top-K, which needs a `(k+1)`-st query for the last gap).
    InvalidK {
        /// The rejected `k`.
        k: usize,
        /// Human-readable constraint.
        requirement: &'static str,
    },
    /// A ratio/fraction parameter (θ, budget split) left `(0, 1)`.
    InvalidFraction {
        /// Name of the parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The query workload was too small for the mechanism configuration.
    NotEnoughQueries {
        /// Queries supplied.
        got: usize,
        /// Queries required.
        need: usize,
    },
    /// The privacy accountant refused an over-budget spend.
    BudgetExhausted {
        /// Amount requested.
        requested: f64,
        /// Amount remaining.
        remaining: f64,
    },
    /// A budget split request was malformed (empty list, non-positive or
    /// non-finite fractions, or fractions summing above 1).
    InvalidSplit {
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A benchmark/serving configuration knob was degenerate (zero
    /// tenants, a zero or non-finite duration cap, a non-positive QPS
    /// target, …). Degenerate knobs used to be silently clamped or
    /// filtered; typed rejection keeps a mistyped flag from quietly
    /// producing an empty run.
    InvalidBenchConfig {
        /// Name of the rejected knob.
        name: &'static str,
        /// Human-readable constraint.
        requirement: &'static str,
    },
    /// A worker thread panicked mid-run. The run is aborted and the
    /// panic surfaced as a typed error instead of a hang or an opaque
    /// propagated unwind, so callers can report which worker died.
    WorkerPanicked {
        /// Index of the worker whose thread panicked.
        worker: usize,
    },
    /// A utility/answer fed to a selection mechanism was NaN or infinite.
    /// Selection over non-finite scores is undefined (a NaN poisons any
    /// comparison-based race and `±inf` degenerates the softmax), so the
    /// mechanisms reject the workload up front instead of panicking in a
    /// sort or silently mis-selecting.
    NonFiniteUtility {
        /// Index of the offending query.
        index: usize,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for MechanismError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MechanismError::InvalidEpsilon { value } => {
                write!(
                    f,
                    "privacy budget ε must be positive and finite, got {value}"
                )
            }
            MechanismError::InvalidK { k, requirement } => {
                write!(f, "invalid k = {k}: {requirement}")
            }
            MechanismError::InvalidFraction { name, value } => {
                write!(f, "parameter `{name}` must lie in (0, 1), got {value}")
            }
            MechanismError::NotEnoughQueries { got, need } => {
                write!(
                    f,
                    "workload has {got} queries but the mechanism needs {need}"
                )
            }
            MechanismError::BudgetExhausted {
                requested,
                remaining,
            } => {
                write!(f, "requested ε = {requested} but only {remaining} remains")
            }
            MechanismError::InvalidSplit { reason } => {
                write!(f, "invalid budget split: {reason}")
            }
            MechanismError::InvalidBenchConfig { name, requirement } => {
                write!(f, "invalid benchmark config `{name}`: {requirement}")
            }
            MechanismError::WorkerPanicked { worker } => {
                write!(f, "worker {worker} panicked; run aborted")
            }
            MechanismError::NonFiniteUtility { index, value } => {
                write!(
                    f,
                    "utility {index} is {value}; selection requires finite utilities"
                )
            }
        }
    }
}

impl std::error::Error for MechanismError {}

/// Validates a privacy budget.
pub(crate) fn require_epsilon(value: f64) -> Result<f64, MechanismError> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(MechanismError::InvalidEpsilon { value })
    }
}

/// Validates a fraction strictly inside `(0, 1)`.
pub(crate) fn require_fraction(name: &'static str, value: f64) -> Result<f64, MechanismError> {
    if value.is_finite() && value > 0.0 && value < 1.0 {
        Ok(value)
    } else {
        Err(MechanismError::InvalidFraction { name, value })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_validation() {
        assert_eq!(require_epsilon(0.5), Ok(0.5));
        for v in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            assert!(require_epsilon(v).is_err());
        }
    }

    #[test]
    fn fraction_validation() {
        assert!(require_fraction("theta", 0.5).is_ok());
        for v in [0.0, 1.0, -0.2, 2.0] {
            assert!(require_fraction("theta", v).is_err());
        }
    }

    #[test]
    fn messages_are_informative() {
        let e = MechanismError::InvalidK {
            k: 0,
            requirement: "k >= 1",
        };
        assert!(e.to_string().contains("k >= 1"));
        let e = MechanismError::BudgetExhausted {
            requested: 1.0,
            remaining: 0.25,
        };
        assert!(e.to_string().contains("0.25"));
        let e = MechanismError::NotEnoughQueries { got: 2, need: 4 };
        assert!(e.to_string().contains('4'));
        let e = MechanismError::InvalidSplit {
            reason: "fraction list must be non-empty",
        };
        assert!(e.to_string().contains("non-empty"));
        let e = MechanismError::NonFiniteUtility {
            index: 3,
            value: f64::NAN,
        };
        assert!(e.to_string().contains("utility 3"));
        let e = MechanismError::InvalidBenchConfig {
            name: "tenants",
            requirement: "must be at least 1",
        };
        assert!(e.to_string().contains("tenants"));
        let e = MechanismError::WorkerPanicked { worker: 2 };
        assert!(e.to_string().contains("worker 2"));
    }
}
