//! Postprocessing that converts the free gap information into accuracy:
//! BLUE for Top-K (Theorem 3), inverse-variance combining for SVT (§6.2),
//! and free lower-confidence intervals (Lemma 5).
//!
//! Everything here is postprocessing of differentially private outputs, so
//! by the resilience-to-post-processing property it consumes **zero**
//! additional privacy budget.

pub mod blue;
pub mod confidence;
pub mod weighted;

pub use blue::{blue_estimates, blue_estimates_matrix, blue_variance_ratio, BlueInput};
pub use confidence::{gap_confidence_offset, GapConfidence};
pub use weighted::{
    combine_gap_with_measurement, inverse_variance_combine, svt_error_ratio,
    topk_lambda_for_even_split,
};
