//! Best linear unbiased estimation from measurements plus gaps — the
//! paper's Theorem 3 and Corollary 1.
//!
//! Setting: the analyst used Noisy-Top-K-with-Gap to select `k` queries
//! (receiving gaps `g₁..g_{k-1}` between consecutive selected queries for
//! free) and then measured each selected query with the Laplace mechanism
//! (`α₁..α_k`). With `λ = Var(gap noise per η) / Var(measurement noise)`,
//! Theorem 3 gives the BLUE of the true answers:
//!
//! ```text
//! βᵢ = (ᾱ + λk·αᵢ + p - k·p_{i-1}) / ((1+λ)k)
//!   ᾱ = Σαⱼ,  p = Σⱼ (k-j)·gⱼ,  p_i = g₁+…+gᵢ (prefix sums, p₀ = 0)
//! ```
//!
//! and Corollary 1 the error ratio `E|βᵢ-qᵢ|²/E|αᵢ-qᵢ|² = (1+λk)/(k+λk)`,
//! which at `λ = 1` (counting queries, even budget split) approaches 50%
//! as `k` grows.
//!
//! The module ships both the `O(k)` algorithm used in production and the
//! explicit matrix form `β = (Xα + Yg)/((1+λ)k)` used to cross-check it.

use crate::error::MechanismError;

/// Inputs to the BLUE combiner.
#[derive(Debug, Clone, PartialEq)]
pub struct BlueInput<'a> {
    /// Direct noisy measurements `α₁..α_k` of the selected queries, in the
    /// selection's rank order.
    pub measurements: &'a [f64],
    /// Free gaps `g₁..g_{k-1}` between consecutive selected queries (from
    /// Noisy-Top-K-with-Gap).
    pub gaps: &'a [f64],
    /// Variance ratio `λ = Var(ηᵢ)/Var(ξᵢ)` (gap-noise per η over
    /// measurement-noise).
    pub lambda: f64,
}

fn validate(input: &BlueInput<'_>) -> Result<usize, MechanismError> {
    let k = input.measurements.len();
    if k == 0 || input.gaps.len() + 1 != k {
        return Err(MechanismError::NotEnoughQueries {
            got: input.gaps.len(),
            need: k.saturating_sub(1),
        });
    }
    if !(input.lambda.is_finite() && input.lambda > 0.0) {
        return Err(MechanismError::InvalidEpsilon {
            value: input.lambda,
        });
    }
    Ok(k)
}

/// Theorem 3's BLUE via the linear-time algorithm (§5.2 steps 1–3).
pub fn blue_estimates(input: &BlueInput<'_>) -> Result<Vec<f64>, MechanismError> {
    let k = validate(input)?;
    let kf = k as f64;
    let lambda = input.lambda;

    // Step 1: ᾱ and p = Σ (k-i)·gᵢ.
    let alpha_sum: f64 = input.measurements.iter().sum();
    let p: f64 = input
        .gaps
        .iter()
        .enumerate()
        .map(|(i, g)| (kf - (i + 1) as f64) * g)
        .sum();

    // Steps 2–3: prefix sums and the estimate.
    let mut estimates = Vec::with_capacity(k);
    let mut prefix = 0.0; // p_{i-1}
    for i in 0..k {
        if i > 0 {
            prefix += input.gaps[i - 1];
        }
        let beta = (alpha_sum + lambda * kf * input.measurements[i] + p - kf * prefix)
            / ((1.0 + lambda) * kf);
        estimates.push(beta);
    }
    Ok(estimates)
}

/// Theorem 3's BLUE via the explicit matrices `X` and `Y` — `O(k²)`,
/// kept as an executable statement of the theorem and a cross-check for
/// [`blue_estimates`].
pub fn blue_estimates_matrix(input: &BlueInput<'_>) -> Result<Vec<f64>, MechanismError> {
    let k = validate(input)?;
    let kf = k as f64;
    let lambda = input.lambda;

    // X = (1+λk on the diagonal, 1 elsewhere), k×k.
    let x = |i: usize, j: usize| if i == j { 1.0 + lambda * kf } else { 1.0 };
    // Y: Y[i][j] = (k-1-j as rank) pattern minus k below the diagonal:
    // Y[i][j] = (k - (j+1)) - if i > j { k } else { 0 }   (0-indexed).
    let y = |i: usize, j: usize| (kf - (j + 1) as f64) - if i > j { kf } else { 0.0 };

    let mut estimates = Vec::with_capacity(k);
    for i in 0..k {
        let mut acc = 0.0;
        for j in 0..k {
            acc += x(i, j) * input.measurements[j];
        }
        for j in 0..k - 1 {
            acc += y(i, j) * input.gaps[j];
        }
        estimates.push(acc / ((1.0 + lambda) * kf));
    }
    Ok(estimates)
}

/// Corollary 1: the MSE ratio `E|βᵢ-qᵢ|² / E|αᵢ-qᵢ|² = (1+λk)/(k+λk)`.
///
/// The percentage *improvement* the experiments plot is
/// `1 - blue_variance_ratio(..)`.
pub fn blue_variance_ratio(k: usize, lambda: f64) -> f64 {
    let kf = k as f64;
    (1.0 + lambda * kf) / (kf + lambda * kf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_noise::rng::rng_from_seed;
    use free_gap_noise::stats::RunningMoments;
    use free_gap_noise::{ContinuousDistribution, Laplace};
    use proptest::prelude::*;

    #[test]
    fn rejects_bad_shapes() {
        assert!(blue_estimates(&BlueInput {
            measurements: &[],
            gaps: &[],
            lambda: 1.0
        })
        .is_err());
        assert!(blue_estimates(&BlueInput {
            measurements: &[1.0, 2.0],
            gaps: &[],
            lambda: 1.0
        })
        .is_err());
        assert!(blue_estimates(&BlueInput {
            measurements: &[1.0, 2.0],
            gaps: &[0.5],
            lambda: 0.0
        })
        .is_err());
    }

    #[test]
    fn k_equals_one_returns_measurement() {
        // With no gaps, the BLUE is just the measurement itself.
        let out = blue_estimates(&BlueInput {
            measurements: &[7.5],
            gaps: &[],
            lambda: 1.0,
        })
        .unwrap();
        assert_eq!(out, vec![7.5]);
        assert_eq!(blue_variance_ratio(1, 1.0), 1.0);
    }

    #[test]
    fn exact_on_noiseless_inputs() {
        // If measurements and gaps are exact, the BLUE must reproduce the
        // true values (unbiasedness on a consistent system).
        let q = [10.0, 8.0, 5.0, 1.0];
        let gaps = [2.0, 3.0, 4.0];
        for lambda in [0.25, 1.0, 4.0] {
            let out = blue_estimates(&BlueInput {
                measurements: &q,
                gaps: &gaps,
                lambda,
            })
            .unwrap();
            for (b, t) in out.iter().zip(&q) {
                assert!((b - t).abs() < 1e-12, "lambda {lambda}: {out:?}");
            }
        }
    }

    #[test]
    fn linear_time_matches_matrix_form() {
        let meas = [9.0, 7.5, 7.0, 3.0, 2.5];
        let gaps = [1.2, 0.4, 3.8, 0.6];
        for lambda in [0.5, 1.0, 2.0] {
            let a = blue_estimates(&BlueInput {
                measurements: &meas,
                gaps: &gaps,
                lambda,
            })
            .unwrap();
            let b = blue_estimates_matrix(&BlueInput {
                measurements: &meas,
                gaps: &gaps,
                lambda,
            })
            .unwrap();
            for (x, y) in a.iter().zip(&b) {
                assert!((x - y).abs() < 1e-10, "λ={lambda}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn corollary1_variance_ratio_monte_carlo() {
        // Simulate the exact §5.2 noise model and verify both unbiasedness
        // and the (1+λk)/(k+λk) MSE ratio.
        let q = [100.0, 90.0, 70.0, 40.0];
        let k = q.len();
        let sigma_xi = Laplace::new(2.0).unwrap(); // measurement noise
        let lambda = 1.0;
        let sigma_eta = Laplace::new(2.0).unwrap(); // per-η gap noise (λ=1)
        let mut rng = rng_from_seed(31);
        let mut mse_blue = RunningMoments::new();
        let mut mse_meas = RunningMoments::new();
        let mut bias = RunningMoments::new();
        for _ in 0..60_000 {
            let alphas: Vec<f64> = q.iter().map(|v| v + sigma_xi.sample(&mut rng)).collect();
            let etas: Vec<f64> = (0..k).map(|_| sigma_eta.sample(&mut rng)).collect();
            let gaps: Vec<f64> = (0..k - 1)
                .map(|i| q[i] + etas[i] - q[i + 1] - etas[i + 1])
                .collect();
            let betas = blue_estimates(&BlueInput {
                measurements: &alphas,
                gaps: &gaps,
                lambda,
            })
            .unwrap();
            for i in 0..k {
                mse_blue.push((betas[i] - q[i]) * (betas[i] - q[i]));
                mse_meas.push((alphas[i] - q[i]) * (alphas[i] - q[i]));
                bias.push(betas[i] - q[i]);
            }
        }
        assert!(bias.mean().abs() < 0.02, "bias = {}", bias.mean());
        let ratio = mse_blue.mean() / mse_meas.mean();
        let expect = blue_variance_ratio(k, lambda); // (1+4)/(4+4) = 0.625
        assert!((ratio - expect).abs() < 0.02, "ratio {ratio} vs {expect}");
    }

    #[test]
    fn improvement_approaches_half_for_large_k() {
        assert!((1.0 - blue_variance_ratio(25, 1.0)) > 0.47);
        assert!((1.0 - blue_variance_ratio(2, 1.0) - 0.25).abs() < 1e-12);
        // General queries (λ = 4): improvement caps lower.
        let gen25 = 1.0 - blue_variance_ratio(25, 4.0);
        assert!(gen25 < 0.25, "general-query improvement {gen25}");
    }

    proptest! {
        #[test]
        fn blue_is_exact_interpolation_under_consistency(
            values in proptest::collection::vec(0.0f64..1000.0, 2..8),
            lambda in 0.1f64..10.0,
        ) {
            // Sort descending to emulate a top-k selection.
            let mut q = values;
            q.sort_by(|a, b| b.partial_cmp(a).unwrap());
            let gaps: Vec<f64> = q.windows(2).map(|w| w[0] - w[1]).collect();
            let out = blue_estimates(&BlueInput { measurements: &q, gaps: &gaps, lambda }).unwrap();
            for (b, t) in out.iter().zip(&q) {
                prop_assert!((b - t).abs() < 1e-8);
            }
        }

        #[test]
        fn matrix_and_linear_agree(
            meas in proptest::collection::vec(-100.0f64..100.0, 2..10),
            lambda in 0.1f64..10.0,
            seed in 0u64..1000,
        ) {
            let mut rng = rng_from_seed(seed);
            let gaps: Vec<f64> = (0..meas.len() - 1)
                .map(|_| Laplace::new(1.0).unwrap().sample(&mut rng))
                .collect();
            let a = blue_estimates(&BlueInput { measurements: &meas, gaps: &gaps, lambda }).unwrap();
            let b = blue_estimates_matrix(&BlueInput { measurements: &meas, gaps: &gaps, lambda }).unwrap();
            for (x, y) in a.iter().zip(&b) {
                prop_assert!((x - y).abs() < 1e-8);
            }
        }
    }
}
