//! Inverse-variance combination of SVT gaps with direct measurements (§6.2).
//!
//! When (Adaptive-)Sparse-Vector-with-Gap answers a query with gap `γᵢ`, the
//! quantity `γᵢ + T` is already a noisy estimate of `qᵢ(D)`. Given an
//! independent measurement `αᵢ`, the minimum-variance unbiased combination
//! is the standard inverse-variance weighting
//!
//! ```text
//! βᵢ = (αᵢ/Var(αᵢ) + (γᵢ+T)/Var(γᵢ)) / (1/Var(αᵢ) + 1/Var(γᵢ))
//! ```
//!
//! With the §6.2 budget layout (half the budget to SVT with the optimal
//! `1:(2k)^{2/3}` internal split, half to measurement), the error ratio is
//! `(1+∛(4k²))³ / ((1+∛(4k²))³ + k²)` → 80% (i.e. 20% improvement) as
//! `k → ∞`; for monotone workloads `(1+∛(k²))³/((1+∛(k²))³+k²)` → 50%.

use crate::error::MechanismError;

/// Inverse-variance weighted mean of two independent unbiased estimates.
///
/// # Errors
/// Rejects non-positive or non-finite variances.
pub fn inverse_variance_combine(
    estimate_a: f64,
    variance_a: f64,
    estimate_b: f64,
    variance_b: f64,
) -> Result<f64, MechanismError> {
    for v in [variance_a, variance_b] {
        if !(v.is_finite() && v > 0.0) {
            return Err(MechanismError::InvalidEpsilon { value: v });
        }
    }
    let wa = 1.0 / variance_a;
    let wb = 1.0 / variance_b;
    Ok((estimate_a * wa + estimate_b * wb) / (wa + wb))
}

/// Variance of the inverse-variance combination of two independent
/// estimates: `1 / (1/Va + 1/Vb)`.
pub fn combined_variance(variance_a: f64, variance_b: f64) -> f64 {
    1.0 / (1.0 / variance_a + 1.0 / variance_b)
}

/// §6.2's specific combiner: gap `γ` (from SVT-with-Gap, public threshold
/// `T`) plus measurement `α`.
pub fn combine_gap_with_measurement(
    gap: f64,
    threshold: f64,
    gap_variance: f64,
    measurement: f64,
    measurement_variance: f64,
) -> Result<f64, MechanismError> {
    inverse_variance_combine(
        measurement,
        measurement_variance,
        gap + threshold,
        gap_variance,
    )
}

/// The §6.2 closed-form error ratio `Var(β)/Var(α)` for the half/half budget
/// protocol with the optimal internal SVT split.
pub fn svt_error_ratio(k: usize, monotonic: bool) -> f64 {
    let kf = k as f64;
    let c = if monotonic {
        kf.powf(2.0 / 3.0)
    } else {
        (2.0 * kf).powf(2.0 / 3.0)
    };
    let cube = (1.0 + c).powi(3);
    cube / (cube + kf * kf)
}

/// The λ of [`super::blue::BlueInput`] for the §5.2 half/half protocol:
/// selection with `ε/2` (per-query scale `c·k/(ε/2)`… reduced: `2ck/ε`) vs
/// measurement with `ε/2` over `k` queries (scale `2k/ε`); hence `λ = c²` —
/// 1 for monotone workloads, 4 for general ones.
pub fn topk_lambda_for_even_split(monotonic: bool) -> f64 {
    if monotonic {
        1.0
    } else {
        4.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_variances() {
        assert!(inverse_variance_combine(0.0, 0.0, 1.0, 1.0).is_err());
        assert!(inverse_variance_combine(0.0, 1.0, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn equal_variances_average() {
        let c = inverse_variance_combine(2.0, 5.0, 4.0, 5.0).unwrap();
        assert!((c - 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighting_prefers_the_tighter_estimate() {
        let c = inverse_variance_combine(0.0, 1.0, 10.0, 1e6).unwrap();
        assert!(c < 0.1, "combined {c} should hug the low-variance estimate");
    }

    #[test]
    fn combined_variance_below_both() {
        let v = combined_variance(4.0, 4.0);
        assert!((v - 2.0).abs() < 1e-12);
        assert!(combined_variance(1.0, 100.0) < 1.0);
    }

    #[test]
    fn gap_combiner_adds_threshold() {
        // gap 7 over threshold 50 => estimate 57, combined with α = 59.
        let c = combine_gap_with_measurement(7.0, 50.0, 2.0, 59.0, 2.0).unwrap();
        assert!((c - 58.0).abs() < 1e-12);
    }

    #[test]
    fn error_ratio_limits_match_paper() {
        // §6.2: general → 4/5 as k → ∞ (20% improvement)…
        let big = svt_error_ratio(100_000, false);
        assert!((big - 0.8).abs() < 0.01, "general limit {big}");
        // …monotone → 1/2 (50% improvement).
        let big_m = svt_error_ratio(100_000, true);
        assert!((big_m - 0.5).abs() < 0.01, "monotone limit {big_m}");
        // Always a strict improvement.
        for k in 1..30 {
            assert!(svt_error_ratio(k, true) < 1.0);
            assert!(svt_error_ratio(k, false) < 1.0);
        }
    }

    #[test]
    fn error_ratio_closed_form_spot_check() {
        // k = 10 monotone: (1+10^{2/3})³/((1+10^{2/3})³+100).
        let c = 10f64.powf(2.0 / 3.0);
        let expect = (1.0 + c).powi(3) / ((1.0 + c).powi(3) + 100.0);
        assert!((svt_error_ratio(10, true) - expect).abs() < 1e-12);
    }

    #[test]
    fn lambda_constants() {
        assert_eq!(topk_lambda_for_even_split(true), 1.0);
        assert_eq!(topk_lambda_for_even_split(false), 4.0);
    }
}
