//! Free lower-confidence intervals from SVT gaps (Lemma 5, §6.2).
//!
//! An above-threshold answer's gap `γᵢ` satisfies
//! `γᵢ = qᵢ(D) - T + (ηᵢ - η)` where `ηᵢ ~ Lap(1/ε*)` is the query noise of
//! the branch that fired and `η ~ Lap(1/ε₀)` the threshold noise. Lemma 5's
//! closed-form lower tail of `ηᵢ - η` therefore yields, at any confidence
//! `c`: `qᵢ(D) ≥ (γᵢ + T) - t_c` with probability `c` — e.g. a free
//! certificate that the query really is above the threshold.

use crate::error::MechanismError;
use free_gap_noise::LaplaceDiff;

/// A gap-derived point estimate with its lower confidence bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapConfidence {
    /// The point estimate `gap + T` of the true query answer.
    pub estimate: f64,
    /// The lower bound holding with the requested confidence.
    pub lower_bound: f64,
    /// The requested confidence level.
    pub confidence: f64,
}

impl GapConfidence {
    /// True when the bound certifies the answer is at least the threshold.
    pub fn certifies_above(&self, threshold: f64) -> bool {
        self.lower_bound >= threshold
    }
}

/// Solves Lemma 5 for the interval half-width `t_c`:
/// `P(ηᵢ - η ≥ -t_c) = confidence`, with `rate_query = ε*` (the budget of
/// the branch that answered: `ε₁` or `ε₂`) and `rate_threshold = ε₀`.
pub fn gap_confidence_offset(
    rate_query: f64,
    rate_threshold: f64,
    confidence: f64,
) -> Result<f64, MechanismError> {
    let diff = LaplaceDiff::new(rate_query, rate_threshold).map_err(|_| {
        MechanismError::InvalidEpsilon {
            value: rate_query.min(rate_threshold),
        }
    })?;
    diff.confidence_offset(confidence)
        .map_err(|_| MechanismError::InvalidFraction {
            name: "confidence",
            value: confidence,
        })
}

/// Builds the §6.2 confidence certificate for one answered gap.
pub fn gap_confidence(
    gap: f64,
    threshold: f64,
    rate_query: f64,
    rate_threshold: f64,
    confidence: f64,
) -> Result<GapConfidence, MechanismError> {
    let t = gap_confidence_offset(rate_query, rate_threshold, confidence)?;
    Ok(GapConfidence {
        estimate: gap + threshold,
        lower_bound: gap + threshold - t,
        confidence,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answers::QueryAnswers;
    use crate::sparse_vector::SparseVectorWithGap;
    use free_gap_noise::rng::rng_from_seed;

    #[test]
    fn validates_inputs() {
        assert!(gap_confidence_offset(0.0, 1.0, 0.95).is_err());
        assert!(gap_confidence_offset(1.0, 1.0, 1.5).is_err());
    }

    #[test]
    fn offset_grows_with_confidence() {
        let t90 = gap_confidence_offset(1.0, 2.0, 0.90).unwrap();
        let t99 = gap_confidence_offset(1.0, 2.0, 0.99).unwrap();
        assert!(t99 > t90 && t90 > 0.0);
    }

    #[test]
    fn certificate_fields() {
        let c = gap_confidence(12.0, 100.0, 1.0, 4.0, 0.95).unwrap();
        assert_eq!(c.estimate, 112.0);
        assert!(c.lower_bound < c.estimate);
        assert!(c.certifies_above(100.0) == (c.lower_bound >= 100.0));
    }

    #[test]
    fn empirical_coverage_through_the_mechanism() {
        // End-to-end: run SVT-with-Gap on one far-above query and check the
        // 90% lower bound covers the true answer ~90% of the time. (The
        // conditioning on answering is negligible at this margin.)
        let truth = 400.0;
        let threshold = 100.0;
        let m = SparseVectorWithGap::new(1, 1.0, threshold, true).unwrap();
        let answers = QueryAnswers::counting(vec![truth]);
        let rate_query = m.epsilon2() / 1.0; // k = 1, monotone: scale 1/ε₂
        let rate_threshold = m.epsilon1();
        let t90 = gap_confidence_offset(rate_query, rate_threshold, 0.90).unwrap();
        let mut rng = rng_from_seed(64);
        let mut covered = 0usize;
        let mut total = 0usize;
        for _ in 0..40_000 {
            let out = m.run(&answers, &mut rng);
            if let Some((_, gap)) = out.gaps().first() {
                total += 1;
                if gap + threshold - t90 <= truth {
                    covered += 1;
                }
            }
        }
        let rate = covered as f64 / total as f64;
        assert!(
            (rate - 0.90).abs() < 0.01,
            "coverage {rate} over {total} runs"
        );
    }
}
