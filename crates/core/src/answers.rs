//! Query-answer vectors: the mechanisms' input.
//!
//! All mechanisms in the paper consume a list of real-valued query answers
//! `q(D) = (q₁(D), …, qₙ(D))` of **global sensitivity 1** (Definition 2). The
//! only additional structure that matters for privacy accounting is
//! *monotonicity* (Definition 7): whether a database change moves all
//! answers in the same direction, as counting queries do. Monotone workloads
//! get twice the utility at the same `ε` (Theorem 2, footnote 6).

use crate::error::MechanismError;

/// Validates that a borrowed workload has at least `need` queries — the
/// slice-level form of [`QueryAnswers::require_len`], shared by the
/// mechanism cores and the unified [`crate::api`] call surface (whose
/// [`crate::api::QuerySlice`] borrows answers instead of owning them).
pub(crate) fn require_min_len(values: &[f64], need: usize) -> Result<(), MechanismError> {
    if values.len() >= need {
        Ok(())
    } else {
        Err(MechanismError::NotEnoughQueries {
            got: values.len(),
            need,
        })
    }
}

/// A vector of sensitivity-1 query answers, tagged with monotonicity.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswers {
    values: Vec<f64>,
    monotonic: bool,
}

impl QueryAnswers {
    /// Wraps answers to general (not necessarily monotone) sensitivity-1
    /// queries.
    pub fn general(values: Vec<f64>) -> Self {
        Self {
            values,
            monotonic: false,
        }
    }

    /// Wraps answers to monotone queries (e.g. counting queries) — enables
    /// the paper's tighter `ε/2`-style accounting.
    pub fn counting(values: Vec<f64>) -> Self {
        Self {
            values,
            monotonic: true,
        }
    }

    /// Builds from `u64` counts (the `free-gap-data` item-count form).
    pub fn from_counts(counts: &[u64]) -> Self {
        Self::counting(counts.iter().map(|&c| c as f64).collect())
    }

    /// Number of queries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw answers.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Whether the queries are monotone (Definition 7).
    pub fn monotonic(&self) -> bool {
        self.monotonic
    }

    /// Validates that the workload has at least `need` queries.
    pub fn require_len(&self, need: usize) -> Result<(), MechanismError> {
        require_min_len(&self.values, need)
    }

    /// Returns a copy with each answer shifted by the paired delta —
    /// used to build adjacent workloads in tests and audits.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn perturbed(&self, deltas: &[f64]) -> Self {
        // lint:allow(panic-freedom): documented panic; builds audit workloads, not a serving path
        assert_eq!(self.values.len(), deltas.len(), "delta length mismatch");
        Self {
            values: self.values.iter().zip(deltas).map(|(v, d)| v + d).collect(),
            monotonic: self.monotonic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_monotonicity() {
        assert!(!QueryAnswers::general(vec![1.0]).monotonic());
        assert!(QueryAnswers::counting(vec![1.0]).monotonic());
        let c = QueryAnswers::from_counts(&[3, 5]);
        assert!(c.monotonic());
        assert_eq!(c.values(), &[3.0, 5.0]);
    }

    #[test]
    fn require_len_boundary() {
        let q = QueryAnswers::general(vec![0.0; 3]);
        assert!(q.require_len(3).is_ok());
        assert!(q.require_len(4).is_err());
    }

    #[test]
    fn perturbed_shifts_preserving_flag() {
        let q = QueryAnswers::counting(vec![1.0, 2.0]);
        let p = q.perturbed(&[0.5, -0.5]);
        assert_eq!(p.values(), &[1.5, 1.5]);
        assert!(p.monotonic());
    }

    #[test]
    #[should_panic(expected = "delta length")]
    fn perturbed_checks_length() {
        QueryAnswers::general(vec![1.0]).perturbed(&[0.0, 0.0]);
    }
}
