//! The generic draw-provider abstraction behind every mechanism core.
//!
//! Each mechanism in [`crate::noisy_max`] and [`crate::sparse_vector`] keeps
//! **exactly one** copy of its decision/budget logic, written against the
//! [`DrawProvider`] trait. The execution paths differ only in which provider
//! the thin public entry points construct:
//!
//! ```text
//!                mechanism core (one function, generic over P: DrawProvider)
//!                                      │
//!          ┌───────────────────────────┼───────────────────────────┐
//!          ▼                           ▼                           ▼
//!   SourceDraws                  ScratchDraws                  RngDraws
//!   (dyn NoiseSource:            (SvtScratch/BlockBuffer:      (plain Rng:
//!    alignment checker,           batched + blocked noise,      draw-exact
//!    reference `run`)             Monte-Carlo fast path)        monomorphic)
//! ```
//!
//! ## Contract
//!
//! The trait exposes the draw shapes the paper's mechanisms need — single
//! draws ([`next`](DrawProvider::next)), Algorithm 2's `(ξ, η)` pairs
//! ([`peek_pairs`](DrawProvider::peek_pairs)), the multi-branch ladder's
//! `m`-tuples ([`peek_tuples`](DrawProvider::peek_tuples)), the Noisy-Max
//! batch ([`fill_offset`](DrawProvider::fill_offset)), the discrete
//! (finite-precision) twins of each
//! ([`discrete_next`](DrawProvider::discrete_next),
//! [`discrete_peek_pairs`](DrawProvider::discrete_peek_pairs),
//! [`discrete_peek_tuples`](DrawProvider::discrete_peek_tuples),
//! [`discrete_fill_offset`](DrawProvider::discrete_fill_offset)), and the
//! baseline-mechanism shapes
//! ([`gumbel_next`](DrawProvider::gumbel_next) for the
//! exponential-mechanism race, [`exp_next`](DrawProvider::exp_next),
//! [`staircase_next`](DrawProvider::staircase_next) /
//! [`staircase_fill_offset`](DrawProvider::staircase_fill_offset) for the
//! variance-optimal measurement) — under
//! one invariant, the **stream discipline** of `README.md`: however a
//! provider buffers internally, the sequence of draws it *serves* is
//! bit-identical to a sequential sampling loop at the requested scales on
//! the same underlying stream. A provider may pull more randomness than it
//! serves (block lookahead, [`ScratchDraws`]) or be draw-exact
//! ([`SourceDraws`], [`RngDraws`]); cores therefore only call
//! `peek_pairs`/`peek_tuples` **after** the matching query is known to
//! exist, so draw-exact providers never sample noise for a query that was
//! never pulled — which is what keeps the recorded alignment tapes
//! draw-for-draw identical to the pre-provider implementations.
//!
//! The `scratch_equivalence` suite enforces output equality across all
//! providers; `tests/draw_provider.rs` proptests the stream discipline
//! itself over random interleavings of the three draw shapes.
//!
//! ## The parallel pair
//!
//! [`BlockSeqDraws`] and [`ParallelDraws`] add a fourth execution path over
//! the per-block sub-stream layout of [`free_gap_noise::par`]: a bulk fill
//! consumes consecutive fixed-size blocks of the run, block `b` drawn from
//! `derive_fast_stream(run_seed, b)`, while scalar draws ride a tape on the
//! reserved stream [`par::SCALAR_STREAM`]. Because every block's noise is a
//! pure function of `(run_seed, block index)`, [`ParallelDraws`] (which
//! fills disjoint slabs from scoped threads, and reduces Top-K selection
//! per chunk) is **bit-identical for every thread count** to
//! [`BlockSeqDraws`] (which replays the same per-block streams in order).
//! The pair serves a *different stream* from the three single-RNG providers
//! above — it is a new benchmark/serving path (`par`), not a replacement.

use crate::scratch::SvtScratch;
use free_gap_alignment::NoiseSource;
use free_gap_noise::par;
use free_gap_noise::rng::{derive_fast_stream, FastRng};
use free_gap_noise::{
    ContinuousDistribution, DiscreteDistribution, DiscreteLaplace, Exponential, Gumbel, Laplace,
    Staircase,
};
use rand::Rng;

/// Largest tuple arity a provider must support — one draw per branch of the
/// deepest multi-branch ladder
/// ([`MultiBranchAdaptiveSparseVector::MAX_BRANCHES`](crate::sparse_vector::MultiBranchAdaptiveSparseVector::MAX_BRANCHES)).
pub const MAX_TUPLE: usize = 16;

/// A source of Laplace (and discrete-Laplace) draws for a mechanism core.
///
/// See the [module docs](self) for the contract. All `f64` values returned
/// are finished draws at the requested scale — cores never rescale.
pub trait DrawProvider {
    /// Starts a run: discards internal lookahead buffered from a previous
    /// stream and refreshes consumption predictions. Cores call this before
    /// their first draw.
    fn begin(&mut self);

    /// Predicted total draw consumption of the run (0 when unknown) — cores
    /// use it to pre-size output buffers, never for control flow.
    fn predicted_draws(&self) -> usize;

    /// One `Lap(scale)` draw.
    fn next(&mut self, scale: f64) -> f64;

    /// One discrete Laplace draw over the lattice `{kγ}` with per-unit rate
    /// `unit_epsilon` (pmf ∝ `e^{-unit_epsilon·|kγ|}`).
    fn discrete_next(&mut self, unit_epsilon: f64, gamma: f64) -> f64;

    /// Discrete twin of [`peek_tuples`](DrawProvider::peek_tuples): borrows
    /// a slab of whole `unit_epsilons.len()`-tuples of discrete Laplace
    /// draws over `{kγ}`, slot `b` at rate `unit_epsilons[b]`. The slab
    /// length is a non-zero multiple of the arity; blocked providers may
    /// return many tuples per call, draw-exact providers exactly one. Call
    /// only when the query consuming the first tuple is known to exist, and
    /// commit consumption with
    /// [`discrete_consume`](DrawProvider::discrete_consume) (in served
    /// values) before the next draw of any shape.
    ///
    /// # Panics
    /// Implementations may panic when `unit_epsilons.len()` exceeds
    /// [`MAX_TUPLE`].
    fn discrete_peek_tuples(&mut self, unit_epsilons: &[f64], gamma: f64) -> &[f64];

    /// Pair specialization of
    /// [`discrete_peek_tuples`](DrawProvider::discrete_peek_tuples) — the
    /// discrete analogue of Algorithm 2's `(ξ, η)` draw shape.
    fn discrete_peek_pairs(&mut self, unit_epsilons: [f64; 2], gamma: f64) -> &[f64] {
        self.discrete_peek_tuples(&unit_epsilons, gamma)
    }

    /// Advances past `draws` values served by the last
    /// [`discrete_peek_tuples`](DrawProvider::discrete_peek_tuples) slab (a
    /// multiple of the arity; may be less than the slab length when the run
    /// halts mid-slab).
    fn discrete_consume(&mut self, draws: usize);

    /// Discrete twin of [`fill_offset`](DrawProvider::fill_offset): fills
    /// `out` with `base[i] +` a discrete Laplace draw at rate
    /// `unit_epsilon` over `{kγ}`, one draw per element in index order —
    /// the finite-precision Noisy-Max shape. Serves exactly `base.len()`
    /// draws; blocked providers drain their buffered lookahead first, so
    /// the served sequence always matches the sequential reference.
    fn discrete_fill_offset(
        &mut self,
        base: &[f64],
        unit_epsilon: f64,
        gamma: f64,
        out: &mut Vec<f64>,
    );

    /// Borrows a slab of whole `scales.len()`-tuples, slot `b` of each tuple
    /// distributed `Lap(scales[b])`. The slab length is a non-zero multiple
    /// of the arity; blocked providers may return many tuples per call,
    /// draw-exact providers exactly one. Call only when the query consuming
    /// the first tuple is known to exist, and commit consumption with
    /// [`consume`](DrawProvider::consume) before the next `peek`/`next`.
    ///
    /// # Panics
    /// Implementations may panic when `scales.len()` exceeds [`MAX_TUPLE`].
    fn peek_tuples(&mut self, scales: &[f64]) -> &[f64];

    /// Pair specialization of [`peek_tuples`](DrawProvider::peek_tuples) —
    /// Algorithm 2's `(ξ, η)` draw shape.
    fn peek_pairs(&mut self, scales: [f64; 2]) -> &[f64] {
        self.peek_tuples(&scales)
    }

    /// Advances past `draws` values served by the last
    /// [`peek_tuples`](DrawProvider::peek_tuples)/[`peek_pairs`](DrawProvider::peek_pairs)
    /// slab (a multiple of the arity; may be less than the slab length when
    /// the run halts mid-slab).
    fn consume(&mut self, draws: usize);

    /// Fills `out` with `base[i] + Lap(scale)`, one draw per element in
    /// index order — the Noisy-Max / measurement shape. Serves exactly
    /// `base.len()` draws; draw-exact providers pull exactly that much from
    /// the underlying stream, while blocked providers drain their buffered
    /// lookahead first (and may buffer more), so the served sequence always
    /// matches the sequential reference.
    fn fill_offset(&mut self, base: &[f64], scale: f64, out: &mut Vec<f64>);

    /// One standard-shape `Gumbel(beta)` draw (location 0) — the
    /// exponential-mechanism race shape, one draw per query in stream
    /// order. Consumes one uniform of the underlying stream on every
    /// provider (the one-uniform inverse-CDF transform).
    fn gumbel_next(&mut self, beta: f64) -> f64;

    /// One one-sided `Exp(beta)` draw; same serving contract as
    /// [`gumbel_next`](DrawProvider::gumbel_next).
    fn exp_next(&mut self, beta: f64) -> f64;

    /// One staircase draw from `dist` — the variance-optimal measurement
    /// shape. Consumes exactly four uniforms of the underlying stream
    /// (the Geng–Viswanath four-variable representation) on every provider.
    fn staircase_next(&mut self, dist: &Staircase) -> f64;

    /// Fills `out` with `base[i] +` a staircase draw from `dist`, one draw
    /// (four uniforms) per element in index order — the staircase
    /// measurement batch shape. The distribution is constructed once by the
    /// caller; the dyn adapter intentionally re-derives it per draw (the
    /// draw-exact reference cost the batched paths hoist).
    fn staircase_fill_offset(&mut self, base: &[f64], dist: &Staircase, out: &mut Vec<f64>);

    /// Fills `out` with `base[i] + Gumbel(beta)`, one draw per element in
    /// index order — the batched exponential-mechanism race shape. The
    /// default loops [`gumbel_next`](DrawProvider::gumbel_next), so it is
    /// bit-identical to the race's per-query draws on every single-stream
    /// provider; the per-block providers override it with their block
    /// engines (same layout as [`fill_offset`](DrawProvider::fill_offset)).
    fn gumbel_fill_offset(&mut self, base: &[f64], beta: f64, out: &mut Vec<f64>) {
        out.clear();
        out.extend(base.iter().map(|b| b + self.gumbel_next(beta)));
    }

    /// Writes the indices of the `m` largest of `values` into `out`
    /// (descending, ties to the smaller index) — the selection step the
    /// Noisy-Max cores run after their noise fill. Selection consumes no
    /// randomness; it lives on the provider so [`ParallelDraws`] can swap
    /// in the per-chunk k-best reduce, which is bit-identical to the
    /// sequential scan this default runs.
    fn select_top(&mut self, values: &[f64], m: usize, out: &mut Vec<usize>) {
        crate::noisy_max::top_indices_into(values, m, out);
    }
}

/// Draw-provider adapter over the alignment crate's `dyn NoiseSource` — the
/// reference path the checker interposes on (recording and replaying noise
/// tapes). Strictly draw-exact: every draw is forwarded 1:1, in order, at
/// the requested scale, so recorded tapes are identical to a hand-written
/// per-draw loop.
pub struct SourceDraws<'a> {
    source: &'a mut dyn NoiseSource,
    /// One-tuple backing store for `peek_tuples` (a dyn source cannot look
    /// ahead without corrupting the tape).
    tuple: [f64; MAX_TUPLE],
}

impl<'a> SourceDraws<'a> {
    /// Wraps a noise source.
    pub fn new(source: &'a mut dyn NoiseSource) -> Self {
        Self {
            source,
            tuple: [0.0; MAX_TUPLE],
        }
    }
}

impl DrawProvider for SourceDraws<'_> {
    fn begin(&mut self) {}

    fn predicted_draws(&self) -> usize {
        0
    }

    fn next(&mut self, scale: f64) -> f64 {
        self.source.laplace(scale)
    }

    fn discrete_next(&mut self, unit_epsilon: f64, gamma: f64) -> f64 {
        self.source.discrete_laplace(unit_epsilon, gamma)
    }

    fn discrete_peek_tuples(&mut self, unit_epsilons: &[f64], gamma: f64) -> &[f64] {
        let m = unit_epsilons.len();
        // lint:allow(panic-freedom): tuple arity is a compile-time property of the mechanism core, never user input
        assert!(
            (1..=MAX_TUPLE).contains(&m),
            "tuple arity must be in 1..={MAX_TUPLE}"
        );
        for (slot, &rate) in self.tuple[..m].iter_mut().zip(unit_epsilons) {
            *slot = self.source.discrete_laplace(rate, gamma);
        }
        &self.tuple[..m]
    }

    fn discrete_consume(&mut self, _draws: usize) {}

    fn discrete_fill_offset(
        &mut self,
        base: &[f64],
        unit_epsilon: f64,
        gamma: f64,
        out: &mut Vec<f64>,
    ) {
        out.clear();
        out.extend(
            base.iter()
                .map(|b| b + self.source.discrete_laplace(unit_epsilon, gamma)),
        );
    }

    fn peek_tuples(&mut self, scales: &[f64]) -> &[f64] {
        let m = scales.len();
        // lint:allow(panic-freedom): tuple arity is a compile-time property of the mechanism core, never user input
        assert!(
            (1..=MAX_TUPLE).contains(&m),
            "tuple arity must be in 1..={MAX_TUPLE}"
        );
        for (slot, &scale) in self.tuple[..m].iter_mut().zip(scales) {
            *slot = self.source.laplace(scale);
        }
        &self.tuple[..m]
    }

    fn consume(&mut self, _draws: usize) {}

    fn fill_offset(&mut self, base: &[f64], scale: f64, out: &mut Vec<f64>) {
        out.clear();
        out.extend(base.iter().map(|b| b + self.source.laplace(scale)));
    }

    fn gumbel_next(&mut self, beta: f64) -> f64 {
        self.source.gumbel(beta)
    }

    fn exp_next(&mut self, beta: f64) -> f64 {
        self.source.exponential(beta)
    }

    fn staircase_next(&mut self, dist: &Staircase) -> f64 {
        self.source
            .staircase(dist.epsilon(), dist.sensitivity(), dist.gamma())
    }

    fn staircase_fill_offset(&mut self, base: &[f64], dist: &Staircase, out: &mut Vec<f64>) {
        // Forwarded draw-by-draw: the source reconstructs the distribution
        // per draw (one `exp` + one `ln` each), which is exactly the
        // reference cost the scratch providers hoist out of the loop.
        out.clear();
        out.extend(base.iter().map(|b| {
            b + self
                .source
                .staircase(dist.epsilon(), dist.sensitivity(), dist.gamma())
        }));
    }
}

/// Blocked monomorphic draw provider over [`SvtScratch`] — the Monte-Carlo
/// fast path. Unit noise is generated in bounded
/// [`BlockBuffer`](free_gap_noise::BlockBuffer) batches and rescaled per
/// draw (bit-identical to sampling at the scale directly); `peek` calls
/// return whole buffered blocks so the hot loop iterates slabs with
/// `chunks_exact` instead of per-draw cursor arithmetic. May consume more
/// of the RNG stream than it serves — see the stream discipline in
/// [`crate::scratch`].
pub struct ScratchDraws<'a, R: Rng + ?Sized> {
    scratch: &'a mut SvtScratch,
    rng: &'a mut R,
}

impl<'a, R: Rng + ?Sized> ScratchDraws<'a, R> {
    /// Wraps a scratch and the RNG stream of the current run.
    pub fn new(scratch: &'a mut SvtScratch, rng: &'a mut R) -> Self {
        Self { scratch, rng }
    }
}

impl<R: Rng + ?Sized> DrawProvider for ScratchDraws<'_, R> {
    fn begin(&mut self) {
        self.scratch.begin();
    }

    fn predicted_draws(&self) -> usize {
        self.scratch.predicted_draws()
    }

    #[inline]
    fn next(&mut self, scale: f64) -> f64 {
        self.scratch.next_scaled(self.rng, scale)
    }

    #[inline]
    fn discrete_next(&mut self, unit_epsilon: f64, gamma: f64) -> f64 {
        // Served from the shared raw-uniform tape: the distribution's
        // exp/ln normalization is cached per rate, the draw's uniform comes
        // from the same blocked tape the continuous draws use, and any
        // buffered lookahead is consumed first — so discrete and continuous
        // draws interleave without breaking the stream discipline.
        self.scratch.discrete_next(self.rng, unit_epsilon, gamma)
    }

    #[inline]
    fn discrete_peek_tuples(&mut self, unit_epsilons: &[f64], gamma: f64) -> &[f64] {
        // lint:allow(panic-freedom): tuple arity is a compile-time property of the mechanism core, never user input
        assert!(
            (1..=MAX_TUPLE).contains(&unit_epsilons.len()),
            "tuple arity must be in 1..={MAX_TUPLE}"
        );
        self.scratch
            .discrete_peek_tuples(self.rng, unit_epsilons, gamma)
    }

    #[inline]
    fn discrete_consume(&mut self, draws: usize) {
        self.scratch.consume_discrete(draws);
    }

    fn discrete_fill_offset(
        &mut self,
        base: &[f64],
        unit_epsilon: f64,
        gamma: f64,
        out: &mut Vec<f64>,
    ) {
        // Same shape as `fill_offset`: served through the tape so buffered
        // lookahead drains first, refills stay blocked, and the per-draw
        // loop carries no distribution construction.
        self.scratch
            .discrete_fill_offset(self.rng, base, unit_epsilon, gamma, out);
    }

    #[inline]
    fn peek_tuples(&mut self, scales: &[f64]) -> &[f64] {
        self.scratch.peek_tuples_scaled(self.rng, scales)
    }

    #[inline]
    fn consume(&mut self, draws: usize) {
        self.scratch.consume(draws);
    }

    fn fill_offset(&mut self, base: &[f64], scale: f64, out: &mut Vec<f64>) {
        // Served through the block buffer, not the raw RNG: any unit draws
        // buffered ahead by an earlier peek are consumed first, in order, so
        // the stream-discipline contract ("served draws == sequential
        // sampling loop") holds even when `fill_offset` follows `peek_*`.
        // Refills still come in batched `fill_into` blocks, and
        // `unit * scale` is bit-identical to sampling at `scale` directly.
        out.clear();
        out.extend(
            base.iter()
                .map(|b| b + self.scratch.next_scaled(self.rng, scale)),
        );
    }

    #[inline]
    fn gumbel_next(&mut self, beta: f64) -> f64 {
        // Served from the shared raw-uniform tape through the uncached
        // transform (the scale may vary per draw, and the run's watermark
        // cache belongs to the unit-Laplace transform) — interleaves with
        // every other family without breaking the stream discipline.
        self.scratch.gumbel_next(self.rng, beta)
    }

    #[inline]
    fn exp_next(&mut self, beta: f64) -> f64 {
        self.scratch.exp_next(self.rng, beta)
    }

    #[inline]
    fn staircase_next(&mut self, dist: &Staircase) -> f64 {
        self.scratch.staircase_next(self.rng, dist)
    }

    fn staircase_fill_offset(&mut self, base: &[f64], dist: &Staircase, out: &mut Vec<f64>) {
        // Tape-served like `fill_offset`: buffered lookahead drains first,
        // refills stay blocked, and the caller-constructed distribution is
        // reused across the whole batch.
        self.scratch
            .staircase_fill_offset(self.rng, base, dist, out);
    }
}

/// Draw-exact monomorphic provider over a plain [`rand::Rng`] — no block
/// lookahead, no `dyn` dispatch. This is the Top-K scratch path (which
/// draws exactly `n` variates in one batched
/// [`fill_into_offset`](free_gap_noise::ContinuousDistribution::fill_into_offset)
/// pass) and a general-purpose provider for mechanisms without an
/// [`SvtScratch`] at hand.
pub struct RngDraws<'a, R: Rng + ?Sized> {
    rng: &'a mut R,
    tuple: [f64; MAX_TUPLE],
}

impl<'a, R: Rng + ?Sized> RngDraws<'a, R> {
    /// Wraps the RNG stream of the current run.
    pub fn new(rng: &'a mut R) -> Self {
        Self {
            rng,
            tuple: [0.0; MAX_TUPLE],
        }
    }
}

// Draw-exact construction re-checks parameters the mechanism already
// validated; the expects below are justified per-site for the lint.
#[allow(clippy::expect_used)]
impl<R: Rng + ?Sized> DrawProvider for RngDraws<'_, R> {
    fn begin(&mut self) {}

    fn predicted_draws(&self) -> usize {
        0
    }

    fn next(&mut self, scale: f64) -> f64 {
        Laplace::new(scale)
            // lint:allow(panic-freedom): the scale/rate was validated by the mechanism constructor; re-validation cannot fail
            .expect("mechanism-validated scale")
            .sample(self.rng)
    }

    fn discrete_next(&mut self, unit_epsilon: f64, gamma: f64) -> f64 {
        DiscreteLaplace::new(unit_epsilon, gamma)
            // lint:allow(panic-freedom): the scale/rate was validated by the mechanism constructor; re-validation cannot fail
            .expect("mechanism-validated rate")
            .sample_value(self.rng)
    }

    fn discrete_peek_tuples(&mut self, unit_epsilons: &[f64], gamma: f64) -> &[f64] {
        let m = unit_epsilons.len();
        // lint:allow(panic-freedom): tuple arity is a compile-time property of the mechanism core, never user input
        assert!(
            (1..=MAX_TUPLE).contains(&m),
            "tuple arity must be in 1..={MAX_TUPLE}"
        );
        for (slot, &rate) in self.tuple[..m].iter_mut().zip(unit_epsilons) {
            *slot = DiscreteLaplace::new(rate, gamma)
                // lint:allow(panic-freedom): the scale/rate was validated by the mechanism constructor; re-validation cannot fail
                .expect("mechanism-validated rate")
                .sample_value(self.rng);
        }
        &self.tuple[..m]
    }

    fn discrete_consume(&mut self, _draws: usize) {}

    fn discrete_fill_offset(
        &mut self,
        base: &[f64],
        unit_epsilon: f64,
        gamma: f64,
        out: &mut Vec<f64>,
    ) {
        // One distribution construction for the whole batch (`exp`/`ln`
        // hoisted), then the fused offset fill — the discrete analogue of
        // the continuous `fill_into_offset` fast path.
        // lint:allow(panic-freedom): the scale/rate was validated by the mechanism constructor; re-validation cannot fail
        let dl = DiscreteLaplace::new(unit_epsilon, gamma).expect("mechanism-validated rate");
        out.resize(base.len(), 0.0);
        dl.fill_values_into_offset(self.rng, base, out);
    }

    fn peek_tuples(&mut self, scales: &[f64]) -> &[f64] {
        let m = scales.len();
        // lint:allow(panic-freedom): tuple arity is a compile-time property of the mechanism core, never user input
        assert!(
            (1..=MAX_TUPLE).contains(&m),
            "tuple arity must be in 1..={MAX_TUPLE}"
        );
        for (slot, &scale) in self.tuple[..m].iter_mut().zip(scales) {
            *slot = Laplace::new(scale)
                // lint:allow(panic-freedom): the scale/rate was validated by the mechanism constructor; re-validation cannot fail
                .expect("mechanism-validated scale")
                .sample(self.rng);
        }
        &self.tuple[..m]
    }

    fn consume(&mut self, _draws: usize) {}

    fn fill_offset(&mut self, base: &[f64], scale: f64, out: &mut Vec<f64>) {
        // lint:allow(panic-freedom): the scale/rate was validated by the mechanism constructor; re-validation cannot fail
        let lap = Laplace::new(scale).expect("mechanism-validated scale");
        out.resize(base.len(), 0.0);
        lap.fill_into_offset(self.rng, base, out);
    }

    #[inline]
    fn gumbel_next(&mut self, beta: f64) -> f64 {
        Gumbel::new(beta)
            // lint:allow(panic-freedom): the scale/rate was validated by the mechanism constructor; re-validation cannot fail
            .expect("mechanism-validated scale")
            .sample(self.rng)
    }

    #[inline]
    fn exp_next(&mut self, beta: f64) -> f64 {
        Exponential::new(beta)
            // lint:allow(panic-freedom): the scale/rate was validated by the mechanism constructor; re-validation cannot fail
            .expect("mechanism-validated scale")
            .sample(self.rng)
    }

    #[inline]
    fn staircase_next(&mut self, dist: &Staircase) -> f64 {
        dist.sample(self.rng)
    }

    fn staircase_fill_offset(&mut self, base: &[f64], dist: &Staircase, out: &mut Vec<f64>) {
        // The caller-constructed distribution serves the whole batch through
        // the fused offset fill (construction, `exp`, and the stair-side
        // normalization hoisted out of the per-draw loop).
        out.resize(base.len(), 0.0);
        dist.fill_into_offset(self.rng, base, out);
    }
}

/// Sequential reference provider over the per-block sub-stream layout of
/// [`free_gap_noise::par`] — the provider [`ParallelDraws`] must match
/// bit-for-bit.
///
/// Bulk fills ([`fill_offset`](DrawProvider::fill_offset) and its discrete /
/// Gumbel / staircase siblings) reserve the run's next
/// [`par::blocks_for`]`(n)` block indices and draw block `b` from
/// `derive_fast_stream(run_seed, b)`, replaying the blocks strictly in
/// order. Scalar draws and tuple peeks are served from an internal
/// [`SvtScratch`] tape over the reserved stream [`par::SCALAR_STREAM`], so
/// they obey the usual stream discipline without ever touching a block
/// stream. The provider owns all of its randomness — construct with
/// [`new`](BlockSeqDraws::new), rebind between runs with
/// [`reset`](BlockSeqDraws::reset).
#[derive(Debug)]
pub struct BlockSeqDraws {
    run_seed: u64,
    next_block: u64,
    scalar_rng: FastRng,
    tape: SvtScratch,
}

// Block engines re-check distribution parameters the mechanism already
// validated; the expects below are justified per-site for the lint.
#[allow(clippy::expect_used)]
impl BlockSeqDraws {
    /// Creates the provider for one run: scalar draws on
    /// `derive_fast_stream(run_seed, SCALAR_STREAM)`, bulk fills starting
    /// at block 0.
    pub fn new(run_seed: u64) -> Self {
        Self {
            run_seed,
            next_block: 0,
            scalar_rng: derive_fast_stream(run_seed, par::SCALAR_STREAM),
            tape: SvtScratch::new(),
        }
    }

    /// Rebinds the provider to a new run seed, reusing its buffers: the
    /// scalar stream restarts, bulk fills restart at block 0. Bit-identical
    /// to a freshly constructed provider — the stream discipline makes the
    /// served draws a pure function of the streams, never of buffer history.
    pub fn reset(&mut self, run_seed: u64) {
        self.run_seed = run_seed;
        self.next_block = 0;
        self.scalar_rng = derive_fast_stream(run_seed, par::SCALAR_STREAM);
        self.tape.begin();
    }

    /// The seed the run's per-block streams derive from.
    pub fn run_seed(&self) -> u64 {
        self.run_seed
    }

    /// Reserves the consecutive block indices a bulk fill of `n` values
    /// consumes, returning the first.
    fn take_blocks(&mut self, n: usize) -> u64 {
        let first = self.next_block;
        self.next_block = self.next_block.wrapping_add(par::blocks_for(n));
        first
    }

    /// The one continuous block-fill engine behind both providers:
    /// `threads = 1` is the sequential reference, `threads > 1` the scoped
    /// parallel fill — identical output either way.
    fn fill_offset_engine(&mut self, base: &[f64], scale: f64, threads: usize, out: &mut Vec<f64>) {
        // lint:allow(panic-freedom): the scale/rate was validated by the mechanism constructor; re-validation cannot fail
        let lap = Laplace::new(scale).expect("mechanism-validated scale");
        out.resize(base.len(), 0.0);
        let first = self.take_blocks(base.len());
        par::par_fill_offset_blocks(&lap, self.run_seed, first, threads, base, out);
    }

    /// Discrete sibling of [`fill_offset_engine`](Self::fill_offset_engine).
    fn discrete_fill_offset_engine(
        &mut self,
        base: &[f64],
        unit_epsilon: f64,
        gamma: f64,
        threads: usize,
        out: &mut Vec<f64>,
    ) {
        // lint:allow(panic-freedom): the scale/rate was validated by the mechanism constructor; re-validation cannot fail
        let dl = DiscreteLaplace::new(unit_epsilon, gamma).expect("mechanism-validated rate");
        out.resize(base.len(), 0.0);
        let first = self.take_blocks(base.len());
        par::par_fill_values_offset_blocks(&dl, self.run_seed, first, threads, base, out);
    }

    /// Gumbel sibling of [`fill_offset_engine`](Self::fill_offset_engine)
    /// (the batched exponential-mechanism race fill).
    fn gumbel_fill_offset_engine(
        &mut self,
        base: &[f64],
        beta: f64,
        threads: usize,
        out: &mut Vec<f64>,
    ) {
        // lint:allow(panic-freedom): the scale/rate was validated by the mechanism constructor; re-validation cannot fail
        let gum = Gumbel::new(beta).expect("mechanism-validated scale");
        out.resize(base.len(), 0.0);
        let first = self.take_blocks(base.len());
        par::par_fill_offset_blocks(&gum, self.run_seed, first, threads, base, out);
    }

    /// Staircase sibling of [`fill_offset_engine`](Self::fill_offset_engine).
    fn staircase_fill_offset_engine(
        &mut self,
        base: &[f64],
        dist: &Staircase,
        threads: usize,
        out: &mut Vec<f64>,
    ) {
        out.resize(base.len(), 0.0);
        let first = self.take_blocks(base.len());
        par::par_fill_offset_blocks(dist, self.run_seed, first, threads, base, out);
    }
}

impl DrawProvider for BlockSeqDraws {
    fn begin(&mut self) {
        self.tape.begin();
    }

    fn predicted_draws(&self) -> usize {
        self.tape.predicted_draws()
    }

    #[inline]
    fn next(&mut self, scale: f64) -> f64 {
        self.tape.next_scaled(&mut self.scalar_rng, scale)
    }

    #[inline]
    fn discrete_next(&mut self, unit_epsilon: f64, gamma: f64) -> f64 {
        self.tape
            .discrete_next(&mut self.scalar_rng, unit_epsilon, gamma)
    }

    #[inline]
    fn discrete_peek_tuples(&mut self, unit_epsilons: &[f64], gamma: f64) -> &[f64] {
        // lint:allow(panic-freedom): tuple arity is a compile-time property of the mechanism core, never user input
        assert!(
            (1..=MAX_TUPLE).contains(&unit_epsilons.len()),
            "tuple arity must be in 1..={MAX_TUPLE}"
        );
        self.tape
            .discrete_peek_tuples(&mut self.scalar_rng, unit_epsilons, gamma)
    }

    #[inline]
    fn discrete_consume(&mut self, draws: usize) {
        self.tape.consume_discrete(draws);
    }

    fn discrete_fill_offset(
        &mut self,
        base: &[f64],
        unit_epsilon: f64,
        gamma: f64,
        out: &mut Vec<f64>,
    ) {
        self.discrete_fill_offset_engine(base, unit_epsilon, gamma, 1, out);
    }

    #[inline]
    fn peek_tuples(&mut self, scales: &[f64]) -> &[f64] {
        self.tape.peek_tuples_scaled(&mut self.scalar_rng, scales)
    }

    #[inline]
    fn consume(&mut self, draws: usize) {
        self.tape.consume(draws);
    }

    fn fill_offset(&mut self, base: &[f64], scale: f64, out: &mut Vec<f64>) {
        self.fill_offset_engine(base, scale, 1, out);
    }

    #[inline]
    fn gumbel_next(&mut self, beta: f64) -> f64 {
        self.tape.gumbel_next(&mut self.scalar_rng, beta)
    }

    #[inline]
    fn exp_next(&mut self, beta: f64) -> f64 {
        self.tape.exp_next(&mut self.scalar_rng, beta)
    }

    #[inline]
    fn staircase_next(&mut self, dist: &Staircase) -> f64 {
        self.tape.staircase_next(&mut self.scalar_rng, dist)
    }

    fn staircase_fill_offset(&mut self, base: &[f64], dist: &Staircase, out: &mut Vec<f64>) {
        self.staircase_fill_offset_engine(base, dist, 1, out);
    }

    fn gumbel_fill_offset(&mut self, base: &[f64], beta: f64, out: &mut Vec<f64>) {
        self.gumbel_fill_offset_engine(base, beta, 1, out);
    }
}

/// Intra-run parallel provider: [`BlockSeqDraws`]'s per-block streams,
/// filled by up to `threads` scoped threads over disjoint slabs, with
/// Top-K selection reduced per chunk
/// ([`select_top`](DrawProvider::select_top)).
///
/// Bit-identical to [`BlockSeqDraws`] — and to itself at any other thread
/// count — because every block's noise is a pure function of
/// `(run_seed, block index)` and the selection reduce preserves the
/// sequential scan's total order exactly. Scalar draws delegate to the
/// inner sequential provider unchanged.
#[derive(Debug)]
pub struct ParallelDraws {
    inner: BlockSeqDraws,
    threads: usize,
    chunk_tops: Vec<Vec<usize>>,
}

impl ParallelDraws {
    /// Creates the provider for one run with up to `threads` worker threads
    /// (clamped to at least 1). `threads = 1` degrades to the sequential
    /// reference without spawning.
    pub fn new(run_seed: u64, threads: usize) -> Self {
        Self {
            inner: BlockSeqDraws::new(run_seed),
            threads: threads.max(1),
            chunk_tops: Vec::new(),
        }
    }

    /// Rebinds to a new run seed (see [`BlockSeqDraws::reset`]).
    pub fn reset(&mut self, run_seed: u64) {
        self.inner.reset(run_seed);
    }

    /// The configured thread cap.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl DrawProvider for ParallelDraws {
    fn begin(&mut self) {
        self.inner.begin();
    }

    fn predicted_draws(&self) -> usize {
        self.inner.predicted_draws()
    }

    #[inline]
    fn next(&mut self, scale: f64) -> f64 {
        self.inner.next(scale)
    }

    #[inline]
    fn discrete_next(&mut self, unit_epsilon: f64, gamma: f64) -> f64 {
        self.inner.discrete_next(unit_epsilon, gamma)
    }

    #[inline]
    fn discrete_peek_tuples(&mut self, unit_epsilons: &[f64], gamma: f64) -> &[f64] {
        self.inner.discrete_peek_tuples(unit_epsilons, gamma)
    }

    #[inline]
    fn discrete_consume(&mut self, draws: usize) {
        self.inner.discrete_consume(draws);
    }

    fn discrete_fill_offset(
        &mut self,
        base: &[f64],
        unit_epsilon: f64,
        gamma: f64,
        out: &mut Vec<f64>,
    ) {
        self.inner
            .discrete_fill_offset_engine(base, unit_epsilon, gamma, self.threads, out);
    }

    #[inline]
    fn peek_tuples(&mut self, scales: &[f64]) -> &[f64] {
        self.inner.peek_tuples(scales)
    }

    #[inline]
    fn consume(&mut self, draws: usize) {
        self.inner.consume(draws);
    }

    fn fill_offset(&mut self, base: &[f64], scale: f64, out: &mut Vec<f64>) {
        self.inner
            .fill_offset_engine(base, scale, self.threads, out);
    }

    #[inline]
    fn gumbel_next(&mut self, beta: f64) -> f64 {
        self.inner.gumbel_next(beta)
    }

    #[inline]
    fn exp_next(&mut self, beta: f64) -> f64 {
        self.inner.exp_next(beta)
    }

    #[inline]
    fn staircase_next(&mut self, dist: &Staircase) -> f64 {
        self.inner.staircase_next(dist)
    }

    fn staircase_fill_offset(&mut self, base: &[f64], dist: &Staircase, out: &mut Vec<f64>) {
        self.inner
            .staircase_fill_offset_engine(base, dist, self.threads, out);
    }

    fn gumbel_fill_offset(&mut self, base: &[f64], beta: f64, out: &mut Vec<f64>) {
        self.inner
            .gumbel_fill_offset_engine(base, beta, self.threads, out);
    }

    fn select_top(&mut self, values: &[f64], m: usize, out: &mut Vec<usize>) {
        crate::noisy_max::par_top_indices_into(values, m, self.threads, &mut self.chunk_tops, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use free_gap_alignment::SamplingSource;
    use free_gap_noise::rng::rng_from_seed;

    #[test]
    fn source_draws_forward_in_order() {
        let mut ref_rng = rng_from_seed(5);
        let lap = |s: f64, r: &mut rand::rngs::StdRng| Laplace::new(s).unwrap().sample(r);
        let mut rng = rng_from_seed(5);
        let mut source = SamplingSource::new(&mut rng);
        let mut p = SourceDraws::new(&mut source);
        p.begin();
        assert_eq!(p.next(2.0), lap(2.0, &mut ref_rng));
        let pair = p.peek_pairs([3.0, 0.5]).to_vec();
        p.consume(2);
        assert_eq!(pair, vec![lap(3.0, &mut ref_rng), lap(0.5, &mut ref_rng)]);
        let mut out = Vec::new();
        p.fill_offset(&[10.0, 20.0], 1.5, &mut out);
        assert_eq!(
            out,
            vec![10.0 + lap(1.5, &mut ref_rng), 20.0 + lap(1.5, &mut ref_rng)]
        );
    }

    #[test]
    fn providers_serve_identical_streams() {
        // The three providers over identically seeded streams serve
        // bit-identical draws for the same request sequence — the unification
        // invariant (full interleaving coverage lives in
        // `tests/draw_provider.rs`).
        let mut rng_a = rng_from_seed(11);
        let mut source = SamplingSource::new(&mut rng_a);
        let mut a = SourceDraws::new(&mut source);
        let mut rng_b = rng_from_seed(11);
        let mut scratch = SvtScratch::new();
        let mut b = ScratchDraws::new(&mut scratch, &mut rng_b);
        let mut rng_c = rng_from_seed(11);
        let mut c = RngDraws::new(&mut rng_c);
        a.begin();
        b.begin();
        c.begin();
        for i in 0..50 {
            let scale = 0.5 + (i % 7) as f64;
            let (x, y, z) = (a.next(scale), b.next(scale), c.next(scale));
            assert_eq!(x.to_bits(), y.to_bits(), "draw {i}");
            assert_eq!(x.to_bits(), z.to_bits(), "draw {i}");
            // Every third round, interleave a discrete draw: all providers
            // must keep serving one shared sequential stream across the
            // family switch (the finite-precision interleaving contract).
            if i % 3 == 0 {
                let rate = 0.2 + (i % 5) as f64 * 0.3;
                let (x, y, z) = (
                    a.discrete_next(rate, 1.0),
                    b.discrete_next(rate, 1.0),
                    c.discrete_next(rate, 1.0),
                );
                assert_eq!(x.to_bits(), y.to_bits(), "discrete draw {i}");
                assert_eq!(x.to_bits(), z.to_bits(), "discrete draw {i}");
            }
        }
    }

    #[test]
    fn discrete_peek_and_fill_serve_identical_streams() {
        let mut rng_a = rng_from_seed(19);
        let mut source = SamplingSource::new(&mut rng_a);
        let mut a = SourceDraws::new(&mut source);
        let mut rng_b = rng_from_seed(19);
        let mut scratch = SvtScratch::new();
        let mut b = ScratchDraws::new(&mut scratch, &mut rng_b);
        let mut rng_c = rng_from_seed(19);
        let mut c = RngDraws::new(&mut rng_c);
        a.begin();
        b.begin();
        c.begin();
        let rates = [0.8, 0.25];
        let pa = a.discrete_peek_pairs(rates, 0.5)[..2].to_vec();
        a.discrete_consume(2);
        let pb = b.discrete_peek_pairs(rates, 0.5)[..2].to_vec();
        b.discrete_consume(2);
        let pc = c.discrete_peek_pairs(rates, 0.5)[..2].to_vec();
        c.discrete_consume(2);
        assert_eq!(pa[0].to_bits(), pb[0].to_bits());
        assert_eq!(pa[1].to_bits(), pb[1].to_bits());
        assert_eq!(pa[0].to_bits(), pc[0].to_bits());
        assert_eq!(pa[1].to_bits(), pc[1].to_bits());
        let base = [10.0, 20.0, 30.0];
        let (mut oa, mut ob, mut oc) = (Vec::new(), Vec::new(), Vec::new());
        a.discrete_fill_offset(&base, 0.6, 1.0, &mut oa);
        b.discrete_fill_offset(&base, 0.6, 1.0, &mut ob);
        c.discrete_fill_offset(&base, 0.6, 1.0, &mut oc);
        for i in 0..base.len() {
            assert_eq!(oa[i].to_bits(), ob[i].to_bits(), "fill slot {i}");
            assert_eq!(oa[i].to_bits(), oc[i].to_bits(), "fill slot {i}");
        }
    }

    #[test]
    fn baseline_shapes_serve_identical_streams() {
        // gumbel/exp/staircase draws across the three providers on
        // identically seeded streams — the same unification invariant as
        // the Laplace/discrete shapes (full interleaving coverage lives in
        // `tests/draw_provider.rs`).
        let stair = Staircase::new(0.8, 1.0, 0.3).expect("valid shape");
        let mut rng_a = rng_from_seed(23);
        let mut source = SamplingSource::new(&mut rng_a);
        let mut a = SourceDraws::new(&mut source);
        let mut rng_b = rng_from_seed(23);
        let mut scratch = SvtScratch::new();
        let mut b = ScratchDraws::new(&mut scratch, &mut rng_b);
        let mut rng_c = rng_from_seed(23);
        let mut c = RngDraws::new(&mut rng_c);
        a.begin();
        b.begin();
        c.begin();
        for i in 0..40 {
            let beta = 0.5 + (i % 5) as f64;
            let (x, y, z) = (
                a.gumbel_next(beta),
                b.gumbel_next(beta),
                c.gumbel_next(beta),
            );
            assert_eq!(x.to_bits(), y.to_bits(), "gumbel {i}");
            assert_eq!(x.to_bits(), z.to_bits(), "gumbel {i}");
            let (x, y, z) = (a.exp_next(beta), b.exp_next(beta), c.exp_next(beta));
            assert_eq!(x.to_bits(), y.to_bits(), "exponential {i}");
            assert_eq!(x.to_bits(), z.to_bits(), "exponential {i}");
            if i % 3 == 0 {
                let (x, y, z) = (
                    a.staircase_next(&stair),
                    b.staircase_next(&stair),
                    c.staircase_next(&stair),
                );
                assert_eq!(x.to_bits(), y.to_bits(), "staircase {i}");
                assert_eq!(x.to_bits(), z.to_bits(), "staircase {i}");
            }
        }
        let base = [5.0, -2.0, 11.0];
        let (mut oa, mut ob, mut oc) = (Vec::new(), Vec::new(), Vec::new());
        a.staircase_fill_offset(&base, &stair, &mut oa);
        b.staircase_fill_offset(&base, &stair, &mut ob);
        c.staircase_fill_offset(&base, &stair, &mut oc);
        for i in 0..base.len() {
            assert_eq!(oa[i].to_bits(), ob[i].to_bits(), "staircase fill {i}");
            assert_eq!(oa[i].to_bits(), oc[i].to_bits(), "staircase fill {i}");
        }
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn oversized_tuple_is_rejected() {
        let mut rng = rng_from_seed(1);
        let mut p = RngDraws::new(&mut rng);
        p.peek_tuples(&[1.0; MAX_TUPLE + 1]);
    }

    /// Order-sensitive digest over f64 bit patterns (same fold family as
    /// the serve-bench digests).
    fn digest(values: &[f64]) -> u64 {
        use free_gap_noise::rng::splitmix64;
        let mut acc = 0xD16E_57ED_u64;
        for v in values {
            acc ^= v.to_bits();
            acc = splitmix64(&mut acc);
        }
        acc
    }

    /// Drives one provider through every bulk-fill shape plus interleaved
    /// scalar draws and returns the digest of everything it served.
    fn drive_block_provider<P: DrawProvider>(p: &mut P, n: usize) -> u64 {
        let base: Vec<f64> = (0..n).map(|i| (i % 101) as f64 - 13.0).collect();
        let stair = Staircase::new(0.8, 1.0, 0.3).expect("valid shape");
        let mut out = Vec::new();
        let mut acc = Vec::new();
        p.begin();
        p.fill_offset(&base, 2.5, &mut out);
        acc.extend_from_slice(&out);
        acc.push(p.next(1.5));
        p.discrete_fill_offset(&base, 0.4, 1.0, &mut out);
        acc.extend_from_slice(&out);
        acc.push(p.discrete_next(0.3, 1.0));
        p.gumbel_fill_offset(&base, 1.0, &mut out);
        acc.extend_from_slice(&out);
        acc.push(p.gumbel_next(2.0));
        p.staircase_fill_offset(&base, &stair, &mut out);
        acc.extend_from_slice(&out);
        acc.push(p.exp_next(0.7));
        acc.push(p.staircase_next(&stair));
        let pair = p.peek_pairs([3.0, 0.5]);
        let (a, b) = (pair[0], pair[1]);
        p.consume(2);
        acc.push(a);
        acc.push(b);
        // A second fill must continue at the next block index.
        p.fill_offset(&base, 0.9, &mut out);
        acc.extend_from_slice(&out);
        let mut top = Vec::new();
        p.select_top(&acc, 9, &mut top);
        let mut values = acc;
        values.extend(top.iter().map(|&i| i as f64));
        digest(&values)
    }

    #[test]
    fn parallel_draws_match_sequential_reference_for_all_thread_counts() {
        // The tentpole invariant: ParallelDraws at threads {1, 2, 4} and
        // the sequential reference BlockSeqDraws serve bit-identical draws
        // across every fill shape, interleaved with scalar draws, at sizes
        // spanning block boundaries.
        for n in [5, 100, par::BLOCK_LEN, 2 * par::BLOCK_LEN + 7, 9000] {
            let mut reference = BlockSeqDraws::new(42);
            let want = drive_block_provider(&mut reference, n);
            for threads in [1, 2, 4] {
                let mut p = ParallelDraws::new(42, threads);
                assert_eq!(
                    drive_block_provider(&mut p, n),
                    want,
                    "n = {n}, threads = {threads} diverged from sequential reference"
                );
            }
        }
    }

    #[test]
    fn block_provider_digest_is_pinned() {
        // Pins the stream layout itself (block size, seed derivation, block
        // accounting): any change to the layout moves this digest and must
        // be a deliberate, documented break.
        let mut p = ParallelDraws::new(7, 4);
        assert_eq!(drive_block_provider(&mut p, 9000), 0x5999_F45D_5790_3DC1);
    }

    #[test]
    fn reset_matches_fresh_construction() {
        let mut fresh = BlockSeqDraws::new(99);
        let want = drive_block_provider(&mut fresh, 1000);
        // Run a different seed first, then reset: served draws must be a
        // pure function of the run seed, not of buffer history.
        let mut reused = BlockSeqDraws::new(7);
        drive_block_provider(&mut reused, 500);
        reused.reset(99);
        assert_eq!(drive_block_provider(&mut reused, 1000), want);
        let mut par_reused = ParallelDraws::new(7, 4);
        drive_block_provider(&mut par_reused, 500);
        par_reused.reset(99);
        assert_eq!(drive_block_provider(&mut par_reused, 1000), want);
        assert_eq!(par_reused.threads(), 4);
        assert_eq!(fresh.run_seed(), 99);
    }

    #[test]
    fn scalar_draws_ride_the_reserved_stream() {
        // Scalar draws must come off SCALAR_STREAM regardless of how many
        // blocks bulk fills consumed — pin them against a hand-built tape.
        let mut p = BlockSeqDraws::new(11);
        p.begin();
        let mut out = Vec::new();
        p.fill_offset(&[0.0; 100], 1.0, &mut out);
        let x = p.next(2.0);
        let mut q = BlockSeqDraws::new(11);
        q.begin();
        let y = q.next(2.0);
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "bulk fills must not consume the scalar stream"
        );
    }
}
