//! Scratch-path ⇔ allocating-path equivalence: for every mechanism with a
//! batched fast path, `run_with_scratch` on a fresh RNG stream must produce
//! **bit-for-bit** the same output as `run` on an identically seeded stream.
//!
//! This is the contract that lets the bench harness and Monte-Carlo loops
//! use the fast paths while the paper-protocol experiments and the alignment
//! checker keep their numbers: the two paths are the same mechanism, not two
//! implementations that merely agree in distribution.

use free_gap_core::noisy_max::{ClassicNoisyTopK, NoisyTopKWithGap};
use free_gap_core::scratch::{SvtScratch, TopKScratch};
use free_gap_core::sparse_vector::{
    AdaptiveSparseVector, ClassicSparseVector, SparseVectorWithGap,
};
use free_gap_core::QueryAnswers;
use free_gap_noise::rng::derive_stream;
use proptest::prelude::*;
use rand::Rng;

/// A mid-sized monotone workload with a mix of clear winners, near-ties and
/// noise-level entries, regenerated deterministically per seed.
fn workload(seed: u64, n: usize) -> QueryAnswers {
    let mut rng = derive_stream(seed, 999);
    let values: Vec<f64> = (0..n)
        .map(|i| {
            let base = (n - i) as f64 * 0.37;
            base + rng.gen_range(0.0..30.0)
        })
        .collect();
    QueryAnswers::counting(values)
}

#[test]
fn topk_with_gap_scratch_is_bit_identical() {
    let m = NoisyTopKWithGap::new(10, 0.7, true).unwrap();
    let answers = workload(1, 400);
    let mut scratch = TopKScratch::new();
    for run in 0..200u64 {
        let expect = m.run(&answers, &mut derive_stream(42, run));
        let got = m.run_with_scratch(&answers, &mut derive_stream(42, run), &mut scratch);
        assert_eq!(expect, got, "run {run}");
        // PartialEq on f64 gaps is exact equality: spot-check bits too.
        for (a, b) in expect.items.iter().zip(&got.items) {
            assert_eq!(a.gap.to_bits(), b.gap.to_bits(), "run {run}");
        }
    }
}

#[test]
fn classic_topk_scratch_is_bit_identical() {
    let m = ClassicNoisyTopK::new(5, 1.1, false).unwrap();
    let answers = workload(2, 250);
    let mut scratch = TopKScratch::new();
    for run in 0..200u64 {
        let expect = m.run(&answers, &mut derive_stream(7, run));
        let got = m.run_with_scratch(&answers, &mut derive_stream(7, run), &mut scratch);
        assert_eq!(expect, got, "run {run}");
    }
}

#[test]
fn classic_svt_scratch_is_bit_identical() {
    let answers = workload(3, 500);
    let threshold = answers.values()[30];
    let m = ClassicSparseVector::new(8, 0.7, threshold, true).unwrap();
    let mut scratch = SvtScratch::new();
    for run in 0..200u64 {
        let expect = m.run(&answers, &mut derive_stream(11, run));
        let got = m.run_with_scratch(&answers, &mut derive_stream(11, run), &mut scratch);
        assert_eq!(expect, got, "run {run}");
    }
}

#[test]
fn svt_with_gap_scratch_is_bit_identical() {
    let answers = workload(4, 500);
    let threshold = answers.values()[25];
    let m = SparseVectorWithGap::new(6, 0.9, threshold, true).unwrap();
    let mut scratch = SvtScratch::new();
    for run in 0..200u64 {
        let expect = m.run(&answers, &mut derive_stream(13, run));
        let got = m.run_with_scratch(&answers, &mut derive_stream(13, run), &mut scratch);
        assert_eq!(expect, got, "run {run}");
        for ((_, a), (_, b)) in expect.gaps().iter().zip(got.gaps().iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "run {run}");
        }
    }
}

#[test]
fn adaptive_svt_scratch_is_bit_identical() {
    let answers = workload(5, 600);
    let threshold = answers.values()[40];
    let m = AdaptiveSparseVector::new(8, 0.7, threshold, true).unwrap();
    let mut scratch = SvtScratch::new();
    for run in 0..200u64 {
        let expect = m.run(&answers, &mut derive_stream(17, run));
        let got = m.run_with_scratch(&answers, &mut derive_stream(17, run), &mut scratch);
        assert_eq!(expect, got, "run {run}");
        assert_eq!(expect.spent.to_bits(), got.spent.to_bits(), "run {run}");
    }
}

#[test]
fn adaptive_svt_scratch_honors_answer_limit() {
    let answers = QueryAnswers::counting(vec![1e7; 200]);
    let m = AdaptiveSparseVector::new(10, 0.7, 10.0, true)
        .unwrap()
        .with_answer_limit(10);
    let mut scratch = SvtScratch::new();
    for run in 0..50u64 {
        let expect = m.run(&answers, &mut derive_stream(19, run));
        let got = m.run_with_scratch(&answers, &mut derive_stream(19, run), &mut scratch);
        assert_eq!(expect, got, "run {run}");
        assert_eq!(got.answered(), 10);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_four_scratch_paths_match_on_random_workloads(
        n in 12usize..120,
        k in 1usize..6,
        seed in 0u64..50_000,
        monotone in proptest::bool::ANY,
        threshold_rank in 2usize..10,
    ) {
        let base = workload(seed, n);
        let answers = if monotone {
            base
        } else {
            QueryAnswers::general(base.values().to_vec())
        };
        let mut sorted: Vec<f64> = answers.values().to_vec();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let threshold = sorted[threshold_rank.min(n - 1)];

        let mut topk_scratch = TopKScratch::new();
        let mut svt_scratch = SvtScratch::new();

        let topk = NoisyTopKWithGap::new(k, 0.8, monotone).unwrap();
        prop_assert_eq!(
            topk.run(&answers, &mut derive_stream(seed, 0)),
            topk.run_with_scratch(&answers, &mut derive_stream(seed, 0), &mut topk_scratch)
        );

        let classic_topk = ClassicNoisyTopK::new(k, 0.8, monotone).unwrap();
        prop_assert_eq!(
            classic_topk.run(&answers, &mut derive_stream(seed, 1)),
            classic_topk.run_with_scratch(
                &answers, &mut derive_stream(seed, 1), &mut topk_scratch)
        );

        let svt = SparseVectorWithGap::new(k, 0.8, threshold, monotone).unwrap();
        prop_assert_eq!(
            svt.run(&answers, &mut derive_stream(seed, 2)),
            svt.run_with_scratch(&answers, &mut derive_stream(seed, 2), &mut svt_scratch)
        );

        let adaptive = AdaptiveSparseVector::new(k, 0.8, threshold, monotone).unwrap();
        prop_assert_eq!(
            adaptive.run(&answers, &mut derive_stream(seed, 3)),
            adaptive.run_with_scratch(&answers, &mut derive_stream(seed, 3), &mut svt_scratch)
        );
    }
}
