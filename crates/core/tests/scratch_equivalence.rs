//! Execution-path equivalence: for every mechanism with fast paths, all
//! paths on a fresh RNG stream must produce **bit-for-bit** the same output
//! as `run` on an identically seeded stream — `run_with_scratch` (batched
//! noise), `run_streaming` (lazy query iterator), and
//! `run_streaming_with_scratch` (both). For the SVT family that is a
//! four-way check per mechanism.
//!
//! This is the contract that lets the bench harness, Monte-Carlo loops and
//! streaming servers use the fast paths while the paper-protocol experiments
//! and the alignment checker keep their numbers: every path is the same
//! mechanism, not implementations that merely agree in distribution.
//!
//! The suite also proves the streaming paths' *laziness*, the
//! privacy-relevant property of Algorithm 2's online form: once the
//! mechanism halts (k-th ⊤, answer limit, or exhausted budget), no further
//! query is ever pulled from the stream — asserted with iterators that
//! panic when over-consumed.

use free_gap_core::exponential_mech::ExponentialMechanism;
use free_gap_core::noisy_max::{ClassicNoisyTopK, DiscreteNoisyTopKWithGap, NoisyTopKWithGap};
use free_gap_core::scratch::{SvtScratch, TopKScratch};
use free_gap_core::sparse_vector::{
    AdaptiveSparseVector, ClassicSparseVector, DiscreteSparseVectorWithGap,
    MultiBranchAdaptiveSparseVector, SparseVectorWithGap,
};
use free_gap_core::staircase_mech::StaircaseMechanism;
use free_gap_core::QueryAnswers;
use free_gap_noise::rng::derive_stream;
use proptest::prelude::*;
use rand::Rng;

/// Wraps an iterator with a hard pull budget: the `allowed + 1`-th call to
/// `next` panics. Used to prove a streaming mechanism never observes a query
/// past its halting point.
struct PanicAfter<I> {
    inner: I,
    allowed: usize,
}

impl<I> PanicAfter<I> {
    fn new(inner: I, allowed: usize) -> Self {
        Self { inner, allowed }
    }
}

impl<I: Iterator<Item = f64>> Iterator for PanicAfter<I> {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        assert!(
            self.allowed > 0,
            "query stream pulled after the mechanism must have halted"
        );
        self.allowed -= 1;
        self.inner.next()
    }
}

/// A mid-sized monotone workload with a mix of clear winners, near-ties and
/// noise-level entries, regenerated deterministically per seed.
fn workload(seed: u64, n: usize) -> QueryAnswers {
    let mut rng = derive_stream(seed, 999);
    let values: Vec<f64> = (0..n)
        .map(|i| {
            let base = (n - i) as f64 * 0.37;
            base + rng.gen_range(0.0..30.0)
        })
        .collect();
    QueryAnswers::counting(values)
}

#[test]
fn topk_with_gap_scratch_is_bit_identical() {
    let m = NoisyTopKWithGap::new(10, 0.7, true).unwrap();
    let answers = workload(1, 400);
    let mut scratch = TopKScratch::new();
    for run in 0..200u64 {
        let expect = m.run(&answers, &mut derive_stream(42, run)).unwrap();
        let got = m
            .run_with_scratch(&answers, &mut derive_stream(42, run), &mut scratch)
            .unwrap();
        assert_eq!(expect, got, "run {run}");
        // PartialEq on f64 gaps is exact equality: spot-check bits too.
        for (a, b) in expect.items.iter().zip(&got.items) {
            assert_eq!(a.gap.to_bits(), b.gap.to_bits(), "run {run}");
        }
    }
}

#[test]
fn classic_topk_scratch_is_bit_identical() {
    let m = ClassicNoisyTopK::new(5, 1.1, false).unwrap();
    let answers = workload(2, 250);
    let mut scratch = TopKScratch::new();
    for run in 0..200u64 {
        let expect = m.run(&answers, &mut derive_stream(7, run));
        let got = m.run_with_scratch(&answers, &mut derive_stream(7, run), &mut scratch);
        assert_eq!(expect, got, "run {run}");
    }
}

#[test]
fn classic_svt_all_four_paths_are_bit_identical() {
    let answers = workload(3, 500);
    let threshold = answers.values()[30];
    let m = ClassicSparseVector::new(8, 0.7, threshold, true).unwrap();
    let mut scratch = SvtScratch::new();
    let mut stream_scratch = SvtScratch::new();
    for run in 0..200u64 {
        let expect = m.run(&answers, &mut derive_stream(11, run));
        let got = m.run_with_scratch(&answers, &mut derive_stream(11, run), &mut scratch);
        assert_eq!(expect, got, "run {run} (scratch)");
        let stream = m.run_streaming(
            answers.values().iter().copied(),
            &mut derive_stream(11, run),
        );
        assert_eq!(expect, stream, "run {run} (streaming)");
        let stream_sc = m.run_streaming_with_scratch(
            answers.values().iter().copied(),
            &mut derive_stream(11, run),
            &mut stream_scratch,
        );
        assert_eq!(expect, stream_sc, "run {run} (streaming scratch)");
    }
}

#[test]
fn svt_with_gap_all_four_paths_are_bit_identical() {
    let answers = workload(4, 500);
    let threshold = answers.values()[25];
    let m = SparseVectorWithGap::new(6, 0.9, threshold, true).unwrap();
    let mut scratch = SvtScratch::new();
    let mut stream_scratch = SvtScratch::new();
    for run in 0..200u64 {
        let expect = m.run(&answers, &mut derive_stream(13, run));
        let got = m.run_with_scratch(&answers, &mut derive_stream(13, run), &mut scratch);
        assert_eq!(expect, got, "run {run} (scratch)");
        let stream = m.run_streaming(
            answers.values().iter().copied(),
            &mut derive_stream(13, run),
        );
        assert_eq!(expect, stream, "run {run} (streaming)");
        let stream_sc = m.run_streaming_with_scratch(
            answers.values().iter().copied(),
            &mut derive_stream(13, run),
            &mut stream_scratch,
        );
        assert_eq!(expect, stream_sc, "run {run} (streaming scratch)");
        // PartialEq on f64 gaps is exact equality: spot-check bits too.
        for ((_, a), (_, b)) in expect.gaps().iter().zip(stream_sc.gaps().iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "run {run}");
        }
    }
}

#[test]
fn adaptive_svt_all_four_paths_are_bit_identical() {
    let answers = workload(5, 600);
    let threshold = answers.values()[40];
    let m = AdaptiveSparseVector::new(8, 0.7, threshold, true).unwrap();
    let mut scratch = SvtScratch::new();
    let mut stream_scratch = SvtScratch::new();
    for run in 0..200u64 {
        let expect = m.run(&answers, &mut derive_stream(17, run));
        let got = m.run_with_scratch(&answers, &mut derive_stream(17, run), &mut scratch);
        assert_eq!(expect, got, "run {run} (scratch)");
        assert_eq!(expect.spent.to_bits(), got.spent.to_bits(), "run {run}");
        let stream = m.run_streaming(
            answers.values().iter().copied(),
            &mut derive_stream(17, run),
        );
        assert_eq!(expect, stream, "run {run} (streaming)");
        let stream_sc = m.run_streaming_with_scratch(
            answers.values().iter().copied(),
            &mut derive_stream(17, run),
            &mut stream_scratch,
        );
        assert_eq!(expect, stream_sc, "run {run} (streaming scratch)");
        assert_eq!(
            expect.spent.to_bits(),
            stream_sc.spent.to_bits(),
            "run {run}"
        );
    }
}

#[test]
fn multi_branch_all_four_paths_are_bit_identical() {
    let answers = workload(6, 400);
    let threshold = answers.values()[30];
    let mut scratch = SvtScratch::new();
    let mut stream_scratch = SvtScratch::new();
    for branches in [1usize, 2, 3, 5] {
        let m = MultiBranchAdaptiveSparseVector::new(6, 0.7, threshold, true, branches).unwrap();
        for run in 0..100u64 {
            let expect = m.run(&answers, &mut derive_stream(23, run));
            let got = m.run_with_scratch(&answers, &mut derive_stream(23, run), &mut scratch);
            assert_eq!(expect, got, "m = {branches}, run {run} (scratch)");
            assert_eq!(expect.spent.to_bits(), got.spent.to_bits());
            let stream = m.run_streaming(
                answers.values().iter().copied(),
                &mut derive_stream(23, run),
            );
            assert_eq!(expect, stream, "m = {branches}, run {run} (streaming)");
            let stream_sc = m.run_streaming_with_scratch(
                answers.values().iter().copied(),
                &mut derive_stream(23, run),
                &mut stream_scratch,
            );
            assert_eq!(
                expect, stream_sc,
                "m = {branches}, run {run} (streaming scratch)"
            );
        }
    }
}

/// The integer-lattice (`γ = 1`) projection of [`workload`], for the
/// finite-precision mechanisms.
fn integer_workload(seed: u64, n: usize) -> QueryAnswers {
    QueryAnswers::counting(
        workload(seed, n)
            .values()
            .iter()
            .map(|v| v.round())
            .collect(),
    )
}

#[test]
fn discrete_topk_scratch_is_bit_identical() {
    let m = DiscreteNoisyTopKWithGap::new(8, 0.9, true).unwrap();
    let answers = integer_workload(7, 350);
    let mut scratch = TopKScratch::new();
    for run in 0..200u64 {
        let expect = m.run(&answers, &mut derive_stream(47, run)).unwrap();
        let got = m
            .run_with_scratch(&answers, &mut derive_stream(47, run), &mut scratch)
            .unwrap();
        assert_eq!(expect, got, "run {run}");
        for (a, b) in expect.items.iter().zip(&got.items) {
            assert_eq!(a.gap.to_bits(), b.gap.to_bits(), "run {run}");
        }
    }
}

#[test]
fn discrete_svt_all_four_paths_are_bit_identical() {
    let answers = integer_workload(8, 500);
    let threshold = answers.values()[30];
    let m = DiscreteSparseVectorWithGap::new(6, 0.8, threshold, true).unwrap();
    let mut scratch = SvtScratch::new();
    let mut stream_scratch = SvtScratch::new();
    for run in 0..200u64 {
        let expect = m.run(&answers, &mut derive_stream(53, run));
        let got = m.run_with_scratch(&answers, &mut derive_stream(53, run), &mut scratch);
        assert_eq!(expect, got, "run {run} (scratch)");
        let stream = m.run_streaming(
            answers.values().iter().copied(),
            &mut derive_stream(53, run),
        );
        assert_eq!(expect, stream, "run {run} (streaming)");
        let stream_sc = m.run_streaming_with_scratch(
            answers.values().iter().copied(),
            &mut derive_stream(53, run),
            &mut stream_scratch,
        );
        assert_eq!(expect, stream_sc, "run {run} (streaming scratch)");
        // PartialEq on f64 gaps is exact equality: spot-check bits too —
        // and pin that the lattice survives every path (gaps are exact
        // integer multiples of γ = 1).
        for ((_, a), (_, b)) in expect.gaps().iter().zip(stream_sc.gaps().iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "run {run}");
            assert_eq!(a.fract(), 0.0, "run {run}: off-lattice gap {a}");
        }
    }
}

#[test]
fn discrete_svt_streaming_never_pulls_past_the_kth_top() {
    // The discrete mirror of the continuous laziness proof: every query
    // towers over the integer threshold at tiny noise, so each pull is a
    // certain ⊤ — the mechanism must pull exactly k queries from an
    // endless stream and halt without observing another one, on both the
    // draw-exact and the block-buffered (noise-lookahead) paths.
    let k = 3usize;
    let m = DiscreteSparseVectorWithGap::new(k, 50.0, 10.0, true).unwrap();
    let mut scratch = SvtScratch::new();
    for run in 0..25u64 {
        let endless = std::iter::repeat(1e9);
        let out = m.run_streaming(
            PanicAfter::new(endless.clone(), k),
            &mut derive_stream(59, run),
        );
        assert_eq!(out.answered(), k, "run {run}");
        let out = m.run_streaming_with_scratch(
            PanicAfter::new(endless, k),
            &mut derive_stream(59, run),
            &mut scratch,
        );
        assert_eq!(out.answered(), k, "run {run} (scratch)");
    }
}

#[test]
fn discrete_svt_streaming_finite_stream_matches_materialized() {
    // A finite stream that ends before k ⊤s are found: the streaming paths
    // must drain it and agree with the materialized run, including when the
    // block buffer's noise lookahead extends past the stream's end.
    let answers = integer_workload(9, 40);
    let threshold = 1e12_f64; // nothing ever clears it
    let m = DiscreteSparseVectorWithGap::new(5, 0.8, threshold, true).unwrap();
    let mut scratch = SvtScratch::new();
    for run in 0..50u64 {
        let expect = m.run(&answers, &mut derive_stream(61, run));
        assert_eq!(expect.answered(), 0);
        assert_eq!(expect.processed(), answers.len());
        let stream_sc = m.run_streaming_with_scratch(
            answers.values().iter().copied(),
            &mut derive_stream(61, run),
            &mut scratch,
        );
        assert_eq!(expect, stream_sc, "run {run}");
    }
}

#[test]
fn adaptive_svt_scratch_honors_answer_limit() {
    let answers = QueryAnswers::counting(vec![1e7; 200]);
    let m = AdaptiveSparseVector::new(10, 0.7, 10.0, true)
        .unwrap()
        .with_answer_limit(10);
    let mut scratch = SvtScratch::new();
    for run in 0..50u64 {
        let expect = m.run(&answers, &mut derive_stream(19, run));
        let got = m.run_with_scratch(&answers, &mut derive_stream(19, run), &mut scratch);
        assert_eq!(expect, got, "run {run}");
        assert_eq!(got.answered(), 10);
    }
}

#[test]
fn adaptive_answer_limit_edge_cases_agree_on_every_path() {
    // Regression guard for the answer-limit handling that used to exist
    // twice (dyn: `is_some_and`, scratch: `unwrap_or(usize::MAX)`): limits
    // 0 and 1 must behave identically on the dyn, scratch and streaming
    // paths, including the degenerate never-answer case.
    let answers = QueryAnswers::counting(vec![1e7; 50]);
    let mut scratch = SvtScratch::new();
    for limit in [0usize, 1] {
        let m = AdaptiveSparseVector::new(10, 0.7, 10.0, true)
            .unwrap()
            .with_answer_limit(limit);
        for run in 0..20u64 {
            let expect = m.run(&answers, &mut derive_stream(29, run));
            assert_eq!(expect.answered(), limit, "limit {limit}, run {run}");
            // limit 0 must stop before processing any query at all.
            assert_eq!(expect.outcomes.len(), limit, "limit {limit}, run {run}");
            let got = m.run_with_scratch(&answers, &mut derive_stream(29, run), &mut scratch);
            assert_eq!(expect, got, "limit {limit}, run {run} (scratch)");
            let stream = m.run_streaming(
                answers.values().iter().copied(),
                &mut derive_stream(29, run),
            );
            assert_eq!(expect, stream, "limit {limit}, run {run} (streaming)");
        }
    }
}

#[test]
fn classic_svt_streaming_never_pulls_past_the_kth_top() {
    // Every query towers over the threshold at tiny noise, so each pull is a
    // certain ⊤: the mechanism must pull exactly k queries from an endless
    // stream and then halt without observing another one.
    let k = 3usize;
    let m = ClassicSparseVector::new(k, 50.0, 10.0, true).unwrap();
    let mut scratch = SvtScratch::new();
    for run in 0..25u64 {
        let endless = std::iter::repeat(1e9);
        let out = m.run_streaming(
            PanicAfter::new(endless.clone(), k),
            &mut derive_stream(31, run),
        );
        assert_eq!(out.answered(), k, "run {run}");
        let out = m.run_streaming_with_scratch(
            PanicAfter::new(endless, k),
            &mut derive_stream(31, run),
            &mut scratch,
        );
        assert_eq!(out.answered(), k, "run {run} (scratch)");
    }
}

#[test]
fn adaptive_streaming_never_pulls_past_budget_exhaustion() {
    // Replay a materialized run to learn exactly how many queries the
    // budget admits, then prove the streaming paths pull not one more from
    // an endless stream.
    let m = AdaptiveSparseVector::new(5, 0.7, 10.0, true).unwrap();
    let mut scratch = SvtScratch::new();
    for run in 0..25u64 {
        let materialized = m.run(
            &QueryAnswers::counting(vec![1e9; 500]),
            &mut derive_stream(37, run),
        );
        let processed = materialized.outcomes.len();
        assert!(processed < 500, "budget must stop before the stream ends");
        let endless = std::iter::repeat(1e9);
        let out = m.run_streaming(
            PanicAfter::new(endless.clone(), processed),
            &mut derive_stream(37, run),
        );
        assert_eq!(materialized, out, "run {run}");
        let out = m.run_streaming_with_scratch(
            PanicAfter::new(endless, processed),
            &mut derive_stream(37, run),
            &mut scratch,
        );
        assert_eq!(materialized, out, "run {run} (scratch)");
    }
}

#[test]
fn adaptive_streaming_answer_limit_caps_stream_pulls() {
    // With an answer limit and certain ⊤s, exactly `limit` pulls happen.
    let limit = 5usize;
    let m = AdaptiveSparseVector::new(10, 0.7, 10.0, true)
        .unwrap()
        .with_answer_limit(limit);
    let mut scratch = SvtScratch::new();
    for run in 0..25u64 {
        let endless = std::iter::repeat(1e9);
        let out = m.run_streaming(
            PanicAfter::new(endless.clone(), limit),
            &mut derive_stream(41, run),
        );
        assert_eq!(out.answered(), limit, "run {run}");
        let out = m.run_streaming_with_scratch(
            PanicAfter::new(endless, limit),
            &mut derive_stream(41, run),
            &mut scratch,
        );
        assert_eq!(out.answered(), limit, "run {run} (scratch)");
    }
}

#[test]
fn multi_branch_streaming_never_pulls_past_budget_exhaustion() {
    let m = MultiBranchAdaptiveSparseVector::new(4, 0.7, 10.0, true, 3).unwrap();
    let mut scratch = SvtScratch::new();
    for run in 0..25u64 {
        let materialized = m.run(
            &QueryAnswers::counting(vec![1e9; 500]),
            &mut derive_stream(43, run),
        );
        let processed = materialized.outcomes.len();
        assert!(processed < 500, "budget must stop before the stream ends");
        let endless = std::iter::repeat(1e9);
        let out = m.run_streaming(
            PanicAfter::new(endless.clone(), processed),
            &mut derive_stream(43, run),
        );
        assert_eq!(materialized, out, "run {run}");
        let out = m.run_streaming_with_scratch(
            PanicAfter::new(endless, processed),
            &mut derive_stream(43, run),
            &mut scratch,
        );
        assert_eq!(materialized, out, "run {run} (scratch)");
    }
}

#[test]
fn exponential_mechanism_all_four_paths_are_bit_identical() {
    // The dyn path materializes and sorts all n Gumbel scores; the
    // scratch/streaming paths run the race through a k-sized insertion
    // buffer. Same draws, same total order — the selections must agree
    // index-for-index on every stream.
    let m = ExponentialMechanism::new(0.9, true).unwrap();
    let answers = workload(7, 400);
    let mut scratch = TopKScratch::new();
    for run in 0..200u64 {
        let expect = m
            .run_top_k(&answers, 10, &mut derive_stream(52, run))
            .unwrap();
        let scratch_sel = m
            .run_top_k_with_scratch(&answers, 10, &mut derive_stream(52, run), &mut scratch)
            .unwrap();
        assert_eq!(expect, scratch_sel, "run {run} (scratch)");
        let streaming = m
            .run_top_k_streaming(
                answers.values().iter().copied(),
                10,
                &mut derive_stream(52, run),
            )
            .unwrap();
        assert_eq!(expect, streaming, "run {run} (streaming)");
        let stream_scratch = m
            .run_top_k_streaming_with_scratch(
                answers.values().iter().copied(),
                10,
                &mut derive_stream(52, run),
                &mut scratch,
            )
            .unwrap();
        assert_eq!(expect, stream_scratch, "run {run} (streaming + scratch)");
        // The argmax entry is the k = 1 race on the same stream.
        let argmax = m.run(&answers, &mut derive_stream(52, run)).unwrap();
        let argmax_scratch = m
            .run_with_scratch(&answers, &mut derive_stream(52, run), &mut scratch)
            .unwrap();
        assert_eq!(argmax, argmax_scratch, "run {run} (argmax)");
    }
}

#[test]
fn staircase_measurement_all_four_paths_are_bit_identical() {
    let m = StaircaseMechanism::new(1.3).unwrap();
    let answers = workload(9, 300);
    let mut scratch = SvtScratch::new();
    for run in 0..200u64 {
        let expect = m.measure_split(answers.values(), &mut derive_stream(53, run));
        let got = m.measure_split_with_scratch(
            answers.values(),
            &mut derive_stream(53, run),
            &mut scratch,
        );
        assert_eq!(expect.len(), got.len());
        for (i, (a, b)) in expect.iter().zip(&got).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "run {run} slot {i} (scratch)");
        }
        let streaming = m.measure_split_streaming(
            answers.values().iter().copied(),
            answers.len(),
            &mut derive_stream(53, run),
        );
        for (i, (a, b)) in expect.iter().zip(&streaming).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "run {run} slot {i} (streaming)");
        }
        let stream_scratch = m.measure_split_streaming_with_scratch(
            answers.values().iter().copied(),
            answers.len(),
            &mut derive_stream(53, run),
            &mut scratch,
        );
        for (i, (a, b)) in expect.iter().zip(&stream_scratch).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "run {run} slot {i} (streaming + scratch)"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn all_fast_paths_match_on_random_workloads(
        n in 12usize..120,
        k in 1usize..6,
        seed in 0u64..50_000,
        monotone in proptest::bool::ANY,
        threshold_rank in 2usize..10,
        branches in 1usize..5,
    ) {
        let base = workload(seed, n);
        let answers = if monotone {
            base
        } else {
            QueryAnswers::general(base.values().to_vec())
        };
        let mut sorted: Vec<f64> = answers.values().to_vec();
        sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let threshold = sorted[threshold_rank.min(n - 1)];

        let mut topk_scratch = TopKScratch::new();
        let mut svt_scratch = SvtScratch::new();

        let topk = NoisyTopKWithGap::new(k, 0.8, monotone).unwrap();
        prop_assert_eq!(
            topk.run(&answers, &mut derive_stream(seed, 0)),
            topk.run_with_scratch(&answers, &mut derive_stream(seed, 0), &mut topk_scratch)
        );

        let classic_topk = ClassicNoisyTopK::new(k, 0.8, monotone).unwrap();
        prop_assert_eq!(
            classic_topk.run(&answers, &mut derive_stream(seed, 1)),
            classic_topk.run_with_scratch(
                &answers, &mut derive_stream(seed, 1), &mut topk_scratch)
        );

        let svt = SparseVectorWithGap::new(k, 0.8, threshold, monotone).unwrap();
        let svt_expect = svt.run(&answers, &mut derive_stream(seed, 2));
        prop_assert_eq!(
            &svt_expect,
            &svt.run_with_scratch(&answers, &mut derive_stream(seed, 2), &mut svt_scratch)
        );
        prop_assert_eq!(
            &svt_expect,
            &svt.run_streaming(answers.values().iter().copied(), &mut derive_stream(seed, 2))
        );
        prop_assert_eq!(
            &svt_expect,
            &svt.run_streaming_with_scratch(
                answers.values().iter().copied(), &mut derive_stream(seed, 2), &mut svt_scratch)
        );

        let adaptive = AdaptiveSparseVector::new(k, 0.8, threshold, monotone).unwrap();
        let adaptive_expect = adaptive.run(&answers, &mut derive_stream(seed, 3));
        prop_assert_eq!(
            &adaptive_expect,
            &adaptive.run_with_scratch(&answers, &mut derive_stream(seed, 3), &mut svt_scratch)
        );
        prop_assert_eq!(
            &adaptive_expect,
            &adaptive.run_streaming(
                answers.values().iter().copied(), &mut derive_stream(seed, 3))
        );
        prop_assert_eq!(
            &adaptive_expect,
            &adaptive.run_streaming_with_scratch(
                answers.values().iter().copied(), &mut derive_stream(seed, 3), &mut svt_scratch)
        );

        let multi =
            MultiBranchAdaptiveSparseVector::new(k, 0.8, threshold, monotone, branches).unwrap();
        let multi_expect = multi.run(&answers, &mut derive_stream(seed, 4));
        prop_assert_eq!(
            &multi_expect,
            &multi.run_with_scratch(&answers, &mut derive_stream(seed, 4), &mut svt_scratch)
        );
        prop_assert_eq!(
            &multi_expect,
            &multi.run_streaming_with_scratch(
                answers.values().iter().copied(), &mut derive_stream(seed, 4), &mut svt_scratch)
        );

        // Baseline mechanisms: exponential-mechanism selection (reference
        // sort vs insertion race) and staircase measurement.
        let expo = ExponentialMechanism::new(0.8, monotone).unwrap();
        let expo_expect = expo.run_top_k(&answers, k, &mut derive_stream(seed, 7)).unwrap();
        prop_assert_eq!(
            &expo_expect,
            &expo.run_top_k_with_scratch(
                &answers, k, &mut derive_stream(seed, 7), &mut topk_scratch).unwrap()
        );
        prop_assert_eq!(
            &expo_expect,
            &expo.run_top_k_streaming(
                answers.values().iter().copied(), k, &mut derive_stream(seed, 7)).unwrap()
        );

        let stair = StaircaseMechanism::new(0.8).unwrap();
        let stair_expect = stair.measure_split(answers.values(), &mut derive_stream(seed, 8));
        prop_assert_eq!(
            &stair_expect,
            &stair.measure_split_with_scratch(
                answers.values(), &mut derive_stream(seed, 8), &mut svt_scratch)
        );
        prop_assert_eq!(
            &stair_expect,
            &stair.measure_split_streaming_with_scratch(
                answers.values().iter().copied(),
                answers.len(),
                &mut derive_stream(seed, 8),
                &mut svt_scratch)
        );

        // Finite-precision variants on the integer projection of the same
        // workload (counting semantics keep the lattice at γ = 1).
        let int_answers = QueryAnswers::counting(
            answers.values().iter().map(|v| v.round()).collect());
        let int_threshold = threshold.round();

        let disc_topk = DiscreteNoisyTopKWithGap::new(k, 0.8, monotone).unwrap();
        prop_assert_eq!(
            disc_topk.run(&int_answers, &mut derive_stream(seed, 5)),
            disc_topk.run_with_scratch(
                &int_answers, &mut derive_stream(seed, 5), &mut topk_scratch)
        );

        let disc_svt =
            DiscreteSparseVectorWithGap::new(k, 0.8, int_threshold, monotone).unwrap();
        let disc_expect = disc_svt.run(&int_answers, &mut derive_stream(seed, 6));
        prop_assert_eq!(
            &disc_expect,
            &disc_svt.run_with_scratch(
                &int_answers, &mut derive_stream(seed, 6), &mut svt_scratch)
        );
        prop_assert_eq!(
            &disc_expect,
            &disc_svt.run_streaming(
                int_answers.values().iter().copied(), &mut derive_stream(seed, 6))
        );
        prop_assert_eq!(
            &disc_expect,
            &disc_svt.run_streaming_with_scratch(
                int_answers.values().iter().copied(),
                &mut derive_stream(seed, 6),
                &mut svt_scratch)
        );
    }
}
