//! Pins the unified call surface (`free_gap_core::api`) to the historical
//! per-mechanism entry points:
//!
//! * `call_reference` is bit-identical to each mechanism's dyn `run` path;
//! * `call_batched` is bit-identical to each mechanism's `*_with_scratch`
//!   fast path;
//! * the resumable streaming SVT (`stream_open`/`stream_feed`) is
//!   bit-identical to a one-shot streaming run under any batching of the
//!   query feed.
//!
//! Together with `tests/scratch_equivalence.rs` (which pins the fast paths
//! to the dyn paths) this makes the new API surface a pure re-packaging:
//! no mechanism's served distribution changes.

use free_gap_core::answers::QueryAnswers;
use free_gap_core::api::{
    AnyMechanism, CallScratch, ExponentialTopK, Mechanism, MechanismOutput, QuerySlice,
};
use free_gap_core::exponential_mech::ExponentialMechanism;
use free_gap_core::noisy_max::{ClassicNoisyTopK, DiscreteNoisyTopKWithGap, NoisyTopKWithGap};
use free_gap_core::sparse_vector::{
    AdaptiveSparseVector, ClassicSparseVector, DiscreteSparseVectorWithGap,
    MultiBranchAdaptiveSparseVector, SparseVectorWithGap,
};
use free_gap_core::staircase_mech::StaircaseMechanism;
use free_gap_core::{SvtScratch, TopKScratch};
use free_gap_noise::rng::{derive_fast_stream, derive_stream};

fn values() -> Vec<f64> {
    vec![120.0, 40.0, 97.0, 80.0, 3.0, 55.0, 101.0, 12.0]
}

fn grid() -> Vec<AnyMechanism> {
    let expo = ExponentialMechanism::new(0.8, true).unwrap();
    vec![
        NoisyTopKWithGap::new(3, 1.0, true).unwrap().into(),
        ClassicNoisyTopK::new(3, 1.0, true).unwrap().into(),
        DiscreteNoisyTopKWithGap::new(3, 1.0, true).unwrap().into(),
        ExponentialTopK::new(expo, 3).unwrap().into(),
        StaircaseMechanism::new(1.0).unwrap().into(),
        SparseVectorWithGap::new(3, 0.7, 60.0, true).unwrap().into(),
        ClassicSparseVector::new(3, 0.7, 60.0, true).unwrap().into(),
        AdaptiveSparseVector::new(3, 0.7, 60.0, true)
            .unwrap()
            .into(),
        MultiBranchAdaptiveSparseVector::new(3, 0.7, 60.0, true, 3)
            .unwrap()
            .into(),
        DiscreteSparseVectorWithGap::new(3, 0.7, 60.0, true)
            .unwrap()
            .into(),
    ]
}

/// `call_reference` goes through the same dyn `SourceDraws` path as each
/// mechanism's `run`, so on the same `StdRng` stream the outputs must be
/// bit-identical.
#[test]
fn call_reference_matches_run_entry_points() {
    let vals = values();
    let answers = QueryAnswers::counting(vals.clone());
    let req = QuerySlice::new(&vals);
    for mech in grid() {
        for seed in 0..20u64 {
            let mut out = MechanismOutput::new_for(&mech);
            mech.call_reference(&req, &mut derive_stream(seed, 0), &mut out)
                .unwrap();
            let expect = match &mech {
                AnyMechanism::NoisyTopKWithGap(m) => {
                    MechanismOutput::TopK(m.run(&answers, &mut derive_stream(seed, 0)).unwrap())
                }
                AnyMechanism::ClassicNoisyTopK(m) => {
                    MechanismOutput::Indices(m.run(&answers, &mut derive_stream(seed, 0)).unwrap())
                }
                AnyMechanism::DiscreteNoisyTopKWithGap(m) => {
                    MechanismOutput::TopK(m.run(&answers, &mut derive_stream(seed, 0)).unwrap())
                }
                AnyMechanism::Exponential(m) => MechanismOutput::Indices(
                    m.mechanism()
                        .run_top_k(&answers, m.k(), &mut derive_stream(seed, 0))
                        .unwrap(),
                ),
                AnyMechanism::Staircase(m) => MechanismOutput::Measurements(
                    m.measure_split(&vals, &mut derive_stream(seed, 0)),
                ),
                AnyMechanism::SparseVectorWithGap(m) => {
                    MechanismOutput::SparseVector(m.run(&answers, &mut derive_stream(seed, 0)))
                }
                AnyMechanism::ClassicSparseVector(m) => {
                    MechanismOutput::SparseVector(m.run(&answers, &mut derive_stream(seed, 0)))
                }
                AnyMechanism::AdaptiveSparseVector(m) => {
                    MechanismOutput::Adaptive(m.run(&answers, &mut derive_stream(seed, 0)))
                }
                AnyMechanism::MultiBranchAdaptiveSparseVector(m) => {
                    MechanismOutput::MultiBranch(m.run(&answers, &mut derive_stream(seed, 0)))
                }
                AnyMechanism::DiscreteSparseVectorWithGap(m) => {
                    MechanismOutput::SparseVector(m.run(&answers, &mut derive_stream(seed, 0)))
                }
            };
            assert_eq!(out, expect, "{} seed {seed}", mech.name());
        }
    }
}

/// `call_batched` picks each mechanism's historical fast provider, so on
/// the same RNG stream it must be bit-identical to the mechanism's own
/// `*_with_scratch` entry point.
#[test]
fn call_batched_matches_with_scratch_entry_points() {
    let vals = values();
    let answers = QueryAnswers::counting(vals.clone());
    let req = QuerySlice::new(&vals);
    for mech in grid() {
        let mut scratch = CallScratch::new();
        let mut out = MechanismOutput::new_for(&mech);
        for seed in 0..20u64 {
            mech.call_batched(
                &req,
                &mut derive_fast_stream(seed, 1),
                &mut scratch,
                &mut out,
            )
            .unwrap();
            let mut topk = TopKScratch::new();
            let mut svt = SvtScratch::new();
            let rng = &mut derive_fast_stream(seed, 1);
            let expect = match &mech {
                AnyMechanism::NoisyTopKWithGap(m) => {
                    MechanismOutput::TopK(m.run_with_scratch(&answers, rng, &mut topk).unwrap())
                }
                AnyMechanism::ClassicNoisyTopK(m) => {
                    MechanismOutput::Indices(m.run_with_scratch(&answers, rng, &mut topk).unwrap())
                }
                AnyMechanism::DiscreteNoisyTopKWithGap(m) => {
                    MechanismOutput::TopK(m.run_with_scratch(&answers, rng, &mut topk).unwrap())
                }
                AnyMechanism::Exponential(m) => MechanismOutput::Indices(
                    m.mechanism()
                        .run_top_k_with_scratch(&answers, m.k(), rng, &mut topk)
                        .unwrap(),
                ),
                AnyMechanism::Staircase(m) => MechanismOutput::Measurements(
                    m.measure_split_with_scratch(&vals, rng, &mut svt),
                ),
                AnyMechanism::SparseVectorWithGap(m) => {
                    MechanismOutput::SparseVector(m.run_with_scratch(&answers, rng, &mut svt))
                }
                AnyMechanism::ClassicSparseVector(m) => {
                    MechanismOutput::SparseVector(m.run_with_scratch(&answers, rng, &mut svt))
                }
                AnyMechanism::AdaptiveSparseVector(m) => {
                    MechanismOutput::Adaptive(m.run_with_scratch(&answers, rng, &mut svt))
                }
                AnyMechanism::MultiBranchAdaptiveSparseVector(m) => MechanismOutput::MultiBranch(
                    m.run_streaming_with_scratch(vals.iter().copied(), rng, &mut svt),
                ),
                AnyMechanism::DiscreteSparseVectorWithGap(m) => {
                    MechanismOutput::SparseVector(m.run_with_scratch(&answers, rng, &mut svt))
                }
            };
            assert_eq!(out, expect, "{} seed {seed}", mech.name());
        }
    }
}

/// Names and costs are what a uniform caller (benchmark grid, serving
/// ledger) keys on: pin them.
#[test]
fn names_and_costs_are_stable() {
    let expect = [
        ("NoisyTopKWithGap", 1.0),
        ("ClassicNoisyTopK", 1.0),
        ("DiscreteNoisyTopKWithGap", 1.0),
        ("ExponentialMechanism", 2.4), // k = 3 peels at ε = 0.8 each
        ("StaircaseMechanism", 1.0),
        ("SparseVectorWithGap", 0.7),
        ("ClassicSparseVector", 0.7),
        ("AdaptiveSparseVector", 0.7),
        ("MultiBranchAdaptiveSparseVector", 0.7),
        ("DiscreteSparseVectorWithGap", 0.7),
    ];
    let grid = grid();
    assert_eq!(grid.len(), expect.len());
    for (mech, (name, cost)) in grid.iter().zip(expect) {
        assert_eq!(mech.name(), name);
        assert!((mech.cost() - cost).abs() < 1e-12, "{name} cost");
    }
}

/// Feeding a streaming SVT run one query at a time (or in any other
/// batching) through `stream_open`/`stream_feed` must reproduce the
/// one-shot streaming run bit for bit — the property that lets a server
/// hold a session open across requests.
#[test]
fn resumable_stream_matches_one_shot() {
    let queries = values();
    let gap = SparseVectorWithGap::new(3, 0.7, 60.0, true).unwrap();
    let classic = ClassicSparseVector::new(3, 0.7, 60.0, true).unwrap();
    // Batchings: one-at-a-time, pairs, front-loaded, everything-at-once.
    let batchings: &[&[usize]] = &[
        &[1, 1, 1, 1, 1, 1, 1, 1],
        &[2, 2, 2, 2],
        &[5, 3],
        &[8],
        &[3, 1, 4],
    ];
    for seed in 0..30u64 {
        let one_shot_gap = {
            let mut scratch = SvtScratch::new();
            gap.run_streaming_with_scratch(
                queries.iter().copied(),
                &mut derive_fast_stream(seed, 2),
                &mut scratch,
            )
        };
        let one_shot_classic = {
            let mut scratch = SvtScratch::new();
            classic.run_streaming_with_scratch(
                queries.iter().copied(),
                &mut derive_fast_stream(seed, 2),
                &mut scratch,
            )
        };
        for batching in batchings {
            assert_eq!(batching.iter().sum::<usize>(), queries.len());
            // Gap-releasing variant.
            let mut rng = derive_fast_stream(seed, 2);
            let mut scratch = SvtScratch::new();
            let mut state = gap.stream_open(&mut rng, &mut scratch);
            let mut decisions = Vec::new();
            let mut offset = 0;
            for &batch in *batching {
                for &q in &queries[offset..offset + batch] {
                    if let Some(d) = gap.stream_feed(&mut state, q, &mut rng, &mut scratch) {
                        decisions.push(d);
                    }
                }
                offset += batch;
            }
            assert_eq!(
                decisions, one_shot_gap.above,
                "gap seed {seed} batching {batching:?}"
            );
            assert_eq!(state.answered(), one_shot_gap.answered());
            assert_eq!(state.is_halted(), one_shot_gap.answered() == gap.k());
            // Classic variant: same decisions, gaps withheld.
            let mut rng = derive_fast_stream(seed, 2);
            let mut scratch = SvtScratch::new();
            let mut state = classic.stream_open(&mut rng, &mut scratch);
            let mut decisions = Vec::new();
            for &q in &queries {
                if let Some(d) = classic.stream_feed(&mut state, q, &mut rng, &mut scratch) {
                    decisions.push(d);
                }
            }
            assert_eq!(
                decisions, one_shot_classic.above,
                "classic seed {seed} batching {batching:?}"
            );
        }
    }
}

/// Once the answer cap is reached, further feeds return `None` without
/// observing the query or advancing the noise stream.
#[test]
fn halted_stream_ignores_further_queries() {
    let gap = SparseVectorWithGap::new(1, 1.0, 10.0, true).unwrap();
    let mut rng = derive_fast_stream(7, 3);
    let mut scratch = SvtScratch::new();
    let mut state = gap.stream_open(&mut rng, &mut scratch);
    // A query far above threshold: answered immediately, halting the run.
    let mut fed = 0;
    while !state.is_halted() {
        if gap
            .stream_feed(&mut state, 500.0, &mut rng, &mut scratch)
            .is_none()
        {
            break;
        }
        fed += 1;
        assert!(fed < 100, "far-above query never answered");
    }
    assert!(state.is_halted());
    assert_eq!(state.answered(), 1);
    assert_eq!(state.k(), 1);
    assert!(gap
        .stream_feed(&mut state, 500.0, &mut rng, &mut scratch)
        .is_none());
}
