//! Stream discipline of the draw providers (README.md invariant): however a
//! provider buffers internally, the sequence of draws it *serves* is
//! bit-identical to a sequential sampling loop at the requested scales on
//! the same RNG stream.
//!
//! The proptest drives the dyn adapter ([`SourceDraws`]), the blocked
//! scratch provider ([`ScratchDraws`]) and the draw-exact monomorphic
//! provider ([`RngDraws`]) through **random interleavings** of every draw
//! shape — single `next()`, `peek_pairs()`, `peek_tuples(m)`,
//! `fill_offset()`, their discrete (finite-precision) twins
//! `discrete_next()` / `discrete_peek_pairs()` / `discrete_peek_tuples()` /
//! `discrete_fill_offset()`, and the baseline-mechanism shapes
//! `gumbel_next()` / `exp_next()` / `staircase_next()` /
//! `staircase_fill_offset()` — over identically seeded streams, and asserts
//! every consumed draw matches the sequential reference bit-for-bit. This
//! is the property that lets one mechanism core swap providers freely: the
//! alignment checker sees the same tape the reference loop would record,
//! and the scratch path's block lookahead is invisible in the served
//! values. Mixing the two noise families in one interleaving is exactly
//! what the scratch provider's raw-uniform tape exists for: a continuous
//! and a discrete draw must come out of the *same* buffered stream in
//! sequential order.

use free_gap_alignment::SamplingSource;
use free_gap_core::draw::{
    BlockSeqDraws, DrawProvider, ParallelDraws, RngDraws, ScratchDraws, SourceDraws,
};
use free_gap_core::SvtScratch;
use free_gap_noise::rng::{derive_fast_stream, rng_from_seed};
use free_gap_noise::{
    ContinuousDistribution, DiscreteDistribution, DiscreteLaplace, Exponential, Gumbel, Laplace,
    Staircase,
};
use proptest::prelude::*;
use rand::Rng;

/// One step of a provider interleaving.
#[derive(Debug, Clone)]
enum Op {
    /// `next(scale)`.
    Next(f64),
    /// `peek_pairs([s0, s1])` + consumption of the first pair.
    Pairs(f64, f64),
    /// `peek_tuples(scales)` + consumption of up to `take` whole tuples
    /// (bounded by the provider's slab; draw-exact providers expose one).
    Tuples(Vec<f64>, usize),
    /// `fill_offset` over `len` zero offsets at the given scale (the
    /// Noisy-Max / measurement batch shape).
    Fill(usize, f64),
    /// `discrete_next(rate, gamma)`.
    DiscreteNext(f64, f64),
    /// `discrete_peek_pairs([r0, r1], gamma)` + consumption of the first
    /// pair.
    DiscretePairs(f64, f64, f64),
    /// `discrete_peek_tuples(rates, gamma)` + consumption of up to `take`
    /// whole tuples.
    DiscreteTuples(Vec<f64>, f64, usize),
    /// `discrete_fill_offset` over `len` zero offsets at the given rate.
    DiscreteFill(usize, f64, f64),
    /// `gumbel_next(beta)` — the exponential-mechanism race shape.
    GumbelNext(f64),
    /// `exp_next(beta)`.
    ExpNext(f64),
    /// `staircase_next` at `(epsilon, gamma)` on unit sensitivity (four
    /// uniforms per draw).
    StaircaseNext(f64, f64),
    /// `staircase_fill_offset` over `len` zero offsets at `(epsilon, gamma)`.
    StaircaseFill(usize, f64, f64),
}

impl Op {
    /// The same op with multi-tuple consumption disabled, so every provider
    /// consumes identically.
    fn single(&self) -> Op {
        match self {
            Op::Tuples(scales, _) => Op::Tuples(scales.clone(), 1),
            Op::DiscreteTuples(rates, gamma, _) => Op::DiscreteTuples(rates.clone(), *gamma, 1),
            other => other.clone(),
        }
    }
}

/// What a served draw was requested as: a continuous `Lap(scale)` or a
/// discrete Laplace at `(unit_epsilon, gamma)`.
#[derive(Debug, Clone, Copy)]
enum Want {
    Cont(f64),
    Disc(f64, f64),
    Gum(f64),
    Exp(f64),
    Stair(f64, f64),
}

/// Positive, finite scales spanning what mechanisms actually request.
const SCALES: [f64; 5] = [0.25, 1.0, 2.0, 7.5, 40.0];
/// Discrete per-unit rates (ε' in the Appendix-A.1 notation).
const RATES: [f64; 4] = [0.1, 0.4, 1.0, 2.5];
/// Lattice steps.
const GAMMAS: [f64; 2] = [0.5, 1.0];

/// Deterministically expands `(seed, count)` into an op interleaving — the
/// vendored proptest generates the raw numbers, this builds the structure.
fn random_ops(seed: u64, count: usize) -> Vec<Op> {
    let mut rng = free_gap_noise::rng::derive_stream(seed, 0x0D5);
    let scale = |rng: &mut rand::rngs::StdRng| SCALES[rng.gen_range(0..SCALES.len())];
    let rate = |rng: &mut rand::rngs::StdRng| RATES[rng.gen_range(0..RATES.len())];
    let gamma = |rng: &mut rand::rngs::StdRng| GAMMAS[rng.gen_range(0..GAMMAS.len())];
    (0..count)
        .map(|_| match rng.gen_range(0..12) {
            0 => Op::Next(scale(&mut rng)),
            1 => {
                let a = scale(&mut rng);
                let b = scale(&mut rng);
                Op::Pairs(a, b)
            }
            2 => {
                let m = rng.gen_range(1..6);
                let scales: Vec<f64> = (0..m).map(|_| scale(&mut rng)).collect();
                let take = rng.gen_range(1..4);
                Op::Tuples(scales, take)
            }
            3 => Op::Fill(rng.gen_range(1..12), scale(&mut rng)),
            4 => Op::DiscreteNext(rate(&mut rng), gamma(&mut rng)),
            5 => {
                let a = rate(&mut rng);
                let b = rate(&mut rng);
                Op::DiscretePairs(a, b, gamma(&mut rng))
            }
            6 => {
                let m = rng.gen_range(1..6);
                let rates: Vec<f64> = (0..m).map(|_| rate(&mut rng)).collect();
                let take = rng.gen_range(1..4);
                Op::DiscreteTuples(rates, gamma(&mut rng), take)
            }
            7 => Op::DiscreteFill(rng.gen_range(1..12), rate(&mut rng), gamma(&mut rng)),
            8 => Op::GumbelNext(scale(&mut rng)),
            9 => Op::ExpNext(scale(&mut rng)),
            10 => Op::StaircaseNext(rate(&mut rng), SPLITS[rng.gen_range(0..SPLITS.len())]),
            _ => Op::StaircaseFill(
                rng.gen_range(1..8),
                rate(&mut rng),
                SPLITS[rng.gen_range(0..SPLITS.len())],
            ),
        })
        .collect()
}

/// Stair-split parameters for the staircase ops (must lie in (0, 1)).
const SPLITS: [f64; 2] = [0.3, 0.7];

/// The staircase distribution the ops request: unit sensitivity.
fn stair_dist(epsilon: f64, split: f64) -> Staircase {
    Staircase::new(epsilon, 1.0, split).expect("valid staircase shape")
}

/// Serves `ops` through `provider`, returning every consumed draw with the
/// request it was served for, in consumption order.
fn serve<P: DrawProvider>(ops: &[Op], provider: &mut P) -> Vec<(Want, f64)> {
    let mut served = Vec::new();
    provider.begin();
    for op in ops {
        match op {
            Op::Next(scale) => served.push((Want::Cont(*scale), provider.next(*scale))),
            Op::Pairs(a, b) => {
                let slab = provider.peek_pairs([*a, *b]);
                served.push((Want::Cont(*a), slab[0]));
                served.push((Want::Cont(*b), slab[1]));
                provider.consume(2);
            }
            Op::Tuples(scales, take) => {
                let m = scales.len();
                let slab = provider.peek_tuples(scales);
                assert!(slab.len() >= m && slab.len().is_multiple_of(m));
                let tuples = (slab.len() / m).min(*take);
                for t in 0..tuples {
                    for (b, &scale) in scales.iter().enumerate() {
                        served.push((Want::Cont(scale), slab[t * m + b]));
                    }
                }
                provider.consume(tuples * m);
            }
            Op::Fill(len, scale) => {
                let base = vec![0.0f64; *len];
                let mut out = Vec::new();
                provider.fill_offset(&base, *scale, &mut out);
                // Zero offsets: each output element IS the served draw.
                served.extend(out.iter().map(|v| (Want::Cont(*scale), *v)));
            }
            Op::DiscreteNext(rate, gamma) => served.push((
                Want::Disc(*rate, *gamma),
                provider.discrete_next(*rate, *gamma),
            )),
            Op::DiscretePairs(a, b, gamma) => {
                let slab = provider.discrete_peek_pairs([*a, *b], *gamma);
                served.push((Want::Disc(*a, *gamma), slab[0]));
                served.push((Want::Disc(*b, *gamma), slab[1]));
                provider.discrete_consume(2);
            }
            Op::DiscreteTuples(rates, gamma, take) => {
                let m = rates.len();
                let slab = provider.discrete_peek_tuples(rates, *gamma);
                assert!(slab.len() >= m && slab.len().is_multiple_of(m));
                let tuples = (slab.len() / m).min(*take);
                for t in 0..tuples {
                    for (b, &rate) in rates.iter().enumerate() {
                        served.push((Want::Disc(rate, *gamma), slab[t * m + b]));
                    }
                }
                provider.discrete_consume(tuples * m);
            }
            Op::DiscreteFill(len, rate, gamma) => {
                let base = vec![0.0f64; *len];
                let mut out = Vec::new();
                provider.discrete_fill_offset(&base, *rate, *gamma, &mut out);
                served.extend(out.iter().map(|v| (Want::Disc(*rate, *gamma), *v)));
            }
            Op::GumbelNext(beta) => {
                served.push((Want::Gum(*beta), provider.gumbel_next(*beta)));
            }
            Op::ExpNext(beta) => {
                served.push((Want::Exp(*beta), provider.exp_next(*beta)));
            }
            Op::StaircaseNext(eps, split) => {
                let dist = stair_dist(*eps, *split);
                served.push((Want::Stair(*eps, *split), provider.staircase_next(&dist)));
            }
            Op::StaircaseFill(len, eps, split) => {
                let dist = stair_dist(*eps, *split);
                let base = vec![0.0f64; *len];
                let mut out = Vec::new();
                provider.staircase_fill_offset(&base, &dist, &mut out);
                served.extend(out.iter().map(|v| (Want::Stair(*eps, *split), *v)));
            }
        }
    }
    served
}

/// Asserts `served` equals a sequential per-draw sampling loop at the
/// consumed request parameters on a fresh stream from `seed` — the
/// stream-discipline invariant, per provider.
fn assert_sequential(label: &str, served: &[(Want, f64)], seed: u64) {
    assert_sequential_on(label, served, rng_from_seed(seed));
}

/// [`assert_sequential`] against an arbitrary reference stream — the
/// per-block providers serve their scalar draws from a *derived*
/// sub-stream, not `rng_from_seed(seed)` directly.
fn assert_sequential_on<R: Rng>(label: &str, served: &[(Want, f64)], mut rng: R) {
    for (i, (want, value)) in served.iter().enumerate() {
        let expect = match want {
            Want::Cont(scale) => Laplace::new(*scale).unwrap().sample(&mut rng),
            Want::Disc(rate, gamma) => DiscreteLaplace::new(*rate, *gamma)
                .unwrap()
                .sample_value(&mut rng),
            Want::Gum(beta) => Gumbel::new(*beta).unwrap().sample(&mut rng),
            Want::Exp(beta) => Exponential::new(*beta).unwrap().sample(&mut rng),
            Want::Stair(eps, split) => stair_dist(*eps, *split).sample(&mut rng),
        };
        assert_eq!(
            value.to_bits(),
            expect.to_bits(),
            "{label}: draw {i} for {want:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Any interleaving of the continuous and discrete draw shapes consumes
    /// the underlying RNG stream in sequential order on every provider, and
    /// the dyn adapter consumes it in exactly the same order as the scratch
    /// provider.
    #[test]
    fn interleavings_serve_identical_streams(
        ops_seed in 0u64..1_000_000,
        op_count in 1usize..40,
        seed in 0u64..100_000,
    ) {
        let ops = random_ops(ops_seed, op_count);
        // Per-provider invariant: consumed draws == sequential sampling at
        // the consumed scales (providers may differ in how many tuples they
        // expose per peek, so each is checked against its own consumption).
        let mut dyn_rng = rng_from_seed(seed);
        let mut source = SamplingSource::new(&mut dyn_rng);
        let dyn_served = serve(&ops, &mut SourceDraws::new(&mut source));
        assert_sequential("dyn adapter", &dyn_served, seed);

        let mut plain_rng = rng_from_seed(seed);
        let plain_served = serve(&ops, &mut RngDraws::new(&mut plain_rng));
        assert_sequential("rng provider", &plain_served, seed);

        let mut scratch = SvtScratch::new();
        let mut scratch_rng = rng_from_seed(seed);
        let scratch_served =
            serve(&ops, &mut ScratchDraws::new(&mut scratch, &mut scratch_rng));
        assert_sequential("scratch provider", &scratch_served, seed);

        // The two draw-exact providers consume identically: element-wise
        // bit equality.
        prop_assert_eq!(dyn_served.len(), plain_served.len());
        for (i, (a, b)) in dyn_served.iter().zip(&plain_served).enumerate() {
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "dyn vs rng, draw {i}");
        }

        // With multi-tuple consumption disabled every provider consumes the
        // same draws — the dyn↔scratch order equivalence, element for
        // element.
        let single_ops: Vec<Op> = ops.iter().map(Op::single).collect();
        let mut dyn_rng = rng_from_seed(seed);
        let mut source = SamplingSource::new(&mut dyn_rng);
        let dyn_single = serve(&single_ops, &mut SourceDraws::new(&mut source));
        let mut scratch = SvtScratch::new();
        let mut scratch_rng = rng_from_seed(seed);
        let scratch_single =
            serve(&single_ops, &mut ScratchDraws::new(&mut scratch, &mut scratch_rng));
        prop_assert_eq!(dyn_single.len(), scratch_single.len());
        for (i, (a, b)) in dyn_single.iter().zip(&scratch_single).enumerate() {
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "dyn vs scratch, draw {i}");
        }
    }

    /// The per-block providers are thread-invariant: [`BlockSeqDraws`] and
    /// [`ParallelDraws`] at 1, 2 and 4 threads serve bit-identical streams
    /// through any interleaving of the draw shapes, a reset provider
    /// replays a fresh one exactly, and the scalar draws obey the usual
    /// stream discipline on the reserved scalar sub-stream
    /// (`derive_fast_stream(seed, SCALAR_STREAM)`).
    #[test]
    fn block_providers_are_thread_invariant(
        ops_seed in 0u64..1_000_000,
        op_count in 1usize..40,
        seed in 0u64..100_000,
    ) {
        let ops = random_ops(ops_seed, op_count);
        // Both providers run the same internal tape, so slab sizes (and
        // hence multi-tuple consumption) agree — no `single()` needed.
        let mut seq = BlockSeqDraws::new(seed);
        let seq_served = serve(&ops, &mut seq);
        for threads in [1usize, 2, 4] {
            let mut par = ParallelDraws::new(seed, threads);
            let par_served = serve(&ops, &mut par);
            prop_assert_eq!(seq_served.len(), par_served.len());
            for (i, (a, b)) in seq_served.iter().zip(&par_served).enumerate() {
                assert_eq!(
                    a.1.to_bits(),
                    b.1.to_bits(),
                    "seq vs {threads}-thread par, draw {i}"
                );
            }
        }

        // Rebinding to the same run seed replays the stream exactly —
        // buffer history from the first serve is invisible. Single-tuple
        // consumption, as in `scratch_reuse_is_invisible`: warm tape state
        // may expose larger (value-identical) slabs per peek.
        let single_ops: Vec<Op> = ops.iter().map(Op::single).collect();
        seq.reset(seed);
        let reset_served = serve(&single_ops, &mut seq);
        let mut fresh = BlockSeqDraws::new(seed);
        let fresh_served = serve(&single_ops, &mut fresh);
        prop_assert_eq!(fresh_served.len(), reset_served.len());
        for (i, (a, b)) in fresh_served.iter().zip(&reset_served).enumerate() {
            assert_eq!(a.1.to_bits(), b.1.to_bits(), "fresh vs reset, draw {i}");
        }

        // Bulk fills consume block streams, not the scalar stream, so an
        // interleaving without them must match sequential sampling on the
        // scalar sub-stream alone.
        let scalar_ops: Vec<Op> = ops
            .iter()
            .filter(|op| {
                !matches!(op, Op::Fill(..) | Op::DiscreteFill(..) | Op::StaircaseFill(..))
            })
            .cloned()
            .collect();
        let mut scalar_provider = BlockSeqDraws::new(seed);
        let scalar_served = serve(&scalar_ops, &mut scalar_provider);
        assert_sequential_on(
            "block scalar stream",
            &scalar_served,
            derive_fast_stream(seed, free_gap_noise::par::SCALAR_STREAM),
        );
    }

    /// A scratch provider reused across runs (dirty block state, stale
    /// prediction, warm discrete-distribution cache) still serves the same
    /// stream as a fresh one: `begin` fully isolates runs.
    #[test]
    fn scratch_reuse_is_invisible(
        warm_seed in 0u64..1_000_000,
        warm_count in 0usize..20,
        ops_seed in 0u64..1_000_000,
        op_count in 1usize..20,
        seed in 0u64..100_000,
    ) {
        let warm_ops = random_ops(warm_seed, warm_count);
        let ops = random_ops(ops_seed, op_count);
        let mut dirty = SvtScratch::new();
        {
            let mut warm_rng = rng_from_seed(seed.wrapping_add(1));
            serve(&warm_ops, &mut ScratchDraws::new(&mut dirty, &mut warm_rng));
        }
        // Single-tuple consumption so the dirty and fresh runs consume
        // identically regardless of history-dependent slab sizes.
        let single_ops: Vec<Op> = ops.iter().map(Op::single).collect();
        let mut dirty_rng = rng_from_seed(seed);
        let dirty_served =
            serve(&single_ops, &mut ScratchDraws::new(&mut dirty, &mut dirty_rng));
        assert_sequential("dirty scratch", &dirty_served, seed);

        let mut fresh = SvtScratch::new();
        let mut fresh_rng = rng_from_seed(seed);
        let fresh_served =
            serve(&single_ops, &mut ScratchDraws::new(&mut fresh, &mut fresh_rng));

        prop_assert_eq!(dirty_served.len(), fresh_served.len());
        for i in 0..dirty_served.len() {
            assert_eq!(
                dirty_served[i].1.to_bits(),
                fresh_served[i].1.to_bits(),
                "draw {i}"
            );
        }
    }
}
