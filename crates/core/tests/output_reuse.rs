//! The `*_into` out-parameter entry points: bit-identical to their
//! allocating twins, and genuinely allocation-free once the output has
//! grown to steady state (the buffer is reused, never reallocated).

use free_gap_core::noisy_max::{
    ClassicNoisyTopK, DiscreteNoisyTopKWithGap, NoisyTopKWithGap, TopKOutput,
};
use free_gap_core::scratch::{SvtScratch, TopKScratch};
use free_gap_core::sparse_vector::{
    AdaptiveSparseVector, AdaptiveSvOutput, ClassicSparseVector, DiscreteSparseVectorWithGap,
    MultiBranchAdaptiveSparseVector, MultiBranchSvOutput, SparseVectorWithGap, SvOutput,
};
use free_gap_core::QueryAnswers;
use free_gap_noise::rng::derive_stream;
use rand::Rng;

fn workload(seed: u64, n: usize) -> QueryAnswers {
    let mut rng = derive_stream(seed, 999);
    let values: Vec<f64> = (0..n)
        .map(|i| (n - i) as f64 * 0.37 + rng.gen_range(0.0..30.0))
        .collect();
    QueryAnswers::counting(values)
}

/// Integer-lattice projection of [`workload`] for the finite-precision
/// mechanisms (`γ = 1`).
fn integer_workload(seed: u64, n: usize) -> QueryAnswers {
    QueryAnswers::counting(
        workload(seed, n)
            .values()
            .iter()
            .map(|v| v.round())
            .collect(),
    )
}

#[test]
fn topk_into_is_bit_identical_and_reuses_the_buffer() {
    let m = NoisyTopKWithGap::new(8, 0.7, true).unwrap();
    let answers = workload(1, 300);
    let mut scratch = TopKScratch::new();
    let mut out = TopKOutput { items: Vec::new() };
    let mut steady_capacity = 0;
    for run in 0..100u64 {
        let expect = m
            .run_with_scratch(&answers, &mut derive_stream(3, run), &mut scratch)
            .unwrap();
        m.run_with_scratch_into(&answers, &mut derive_stream(3, run), &mut scratch, &mut out)
            .unwrap();
        assert_eq!(expect, out, "run {run}");
        if run == 0 {
            steady_capacity = out.items.capacity();
        } else {
            assert_eq!(
                out.items.capacity(),
                steady_capacity,
                "run {run} reallocated"
            );
        }
    }
}

#[test]
fn classic_topk_into_is_bit_identical_and_reuses_the_buffer() {
    let m = ClassicNoisyTopK::new(5, 0.9, true).unwrap();
    let answers = workload(2, 200);
    let mut scratch = TopKScratch::new();
    let mut out = Vec::new();
    let mut steady_capacity = 0;
    for run in 0..100u64 {
        let expect = m
            .run_with_scratch(&answers, &mut derive_stream(5, run), &mut scratch)
            .unwrap();
        m.run_with_scratch_into(&answers, &mut derive_stream(5, run), &mut scratch, &mut out)
            .unwrap();
        assert_eq!(expect, out, "run {run}");
        if run == 0 {
            steady_capacity = out.capacity();
        } else {
            assert_eq!(out.capacity(), steady_capacity, "run {run} reallocated");
        }
    }
}

#[test]
fn svt_into_variants_are_bit_identical_and_reuse_buffers() {
    let answers = workload(3, 400);
    let threshold = answers.values()[30];
    let classic = ClassicSparseVector::new(6, 0.7, threshold, true).unwrap();
    let gap = SparseVectorWithGap::new(6, 0.7, threshold, true).unwrap();
    let mut scratch = SvtScratch::new();
    let mut out = SvOutput { above: Vec::new() };
    for run in 0..100u64 {
        let expect = classic.run_with_scratch(&answers, &mut derive_stream(7, run), &mut scratch);
        classic.run_with_scratch_into(&answers, &mut derive_stream(7, run), &mut scratch, &mut out);
        assert_eq!(expect, out, "classic run {run}");

        let expect = gap.run_with_scratch(&answers, &mut derive_stream(7, run), &mut scratch);
        gap.run_with_scratch_into(&answers, &mut derive_stream(7, run), &mut scratch, &mut out);
        assert_eq!(expect, out, "gap run {run}");

        // Streaming twins share the same core and output buffer.
        gap.run_streaming_with_scratch_into(
            answers.values().iter().copied(),
            &mut derive_stream(7, run),
            &mut scratch,
            &mut out,
        );
        assert_eq!(expect, out, "gap streaming run {run}");
    }
}

#[test]
fn adaptive_into_is_bit_identical_and_reuses_the_buffer() {
    let answers = workload(4, 500);
    let threshold = answers.values()[40];
    let m = AdaptiveSparseVector::new(8, 0.7, threshold, true).unwrap();
    let mut scratch = SvtScratch::new();
    let mut out = AdaptiveSvOutput {
        outcomes: Vec::new(),
        spent: 0.0,
        epsilon: 0.0,
    };
    for run in 0..100u64 {
        let expect = m.run_with_scratch(&answers, &mut derive_stream(11, run), &mut scratch);
        m.run_with_scratch_into(
            &answers,
            &mut derive_stream(11, run),
            &mut scratch,
            &mut out,
        );
        assert_eq!(expect, out, "run {run}");
        assert_eq!(expect.spent.to_bits(), out.spent.to_bits(), "run {run}");
    }
    // Steady state: replaying one fixed stream, consumption (and thus the
    // capacity prediction) stabilizes after two runs — the buffer must then
    // stop growing entirely.
    let mut steady_capacity = 0;
    for rep in 0..20 {
        m.run_with_scratch_into(&answers, &mut derive_stream(11, 0), &mut scratch, &mut out);
        if rep == 2 {
            steady_capacity = out.outcomes.capacity();
        } else if rep > 2 {
            assert_eq!(
                out.outcomes.capacity(),
                steady_capacity,
                "rep {rep} reallocated"
            );
        }
    }
}

#[test]
fn discrete_topk_into_is_bit_identical_and_reuses_the_buffer() {
    let m = DiscreteNoisyTopKWithGap::new(6, 0.8, true).unwrap();
    let answers = integer_workload(6, 250);
    let mut scratch = TopKScratch::new();
    let mut out = TopKOutput { items: Vec::new() };
    let mut steady_capacity = 0;
    for run in 0..100u64 {
        let expect = m
            .run_with_scratch(&answers, &mut derive_stream(17, run), &mut scratch)
            .unwrap();
        m.run_with_scratch_into(
            &answers,
            &mut derive_stream(17, run),
            &mut scratch,
            &mut out,
        )
        .unwrap();
        assert_eq!(expect, out, "run {run}");
        if run == 0 {
            steady_capacity = out.items.capacity();
        } else {
            assert_eq!(
                out.items.capacity(),
                steady_capacity,
                "run {run} reallocated"
            );
        }
    }
}

#[test]
fn discrete_svt_into_variants_are_bit_identical_and_reuse_buffers() {
    let answers = integer_workload(7, 400);
    let threshold = answers.values()[30];
    let m = DiscreteSparseVectorWithGap::new(5, 0.8, threshold, true).unwrap();
    let mut scratch = SvtScratch::new();
    let mut out = SvOutput { above: Vec::new() };
    for run in 0..100u64 {
        let expect = m.run_with_scratch(&answers, &mut derive_stream(19, run), &mut scratch);
        m.run_with_scratch_into(
            &answers,
            &mut derive_stream(19, run),
            &mut scratch,
            &mut out,
        );
        assert_eq!(expect, out, "run {run}");

        // Streaming twin shares the same core and output buffer.
        m.run_streaming_with_scratch_into(
            answers.values().iter().copied(),
            &mut derive_stream(19, run),
            &mut scratch,
            &mut out,
        );
        assert_eq!(expect, out, "streaming run {run}");
    }
    // Steady state on one fixed stream: the consumption prediction
    // stabilizes and the reused output must stop growing entirely.
    let mut steady_capacity = 0;
    for rep in 0..20 {
        m.run_with_scratch_into(&answers, &mut derive_stream(19, 0), &mut scratch, &mut out);
        if rep == 2 {
            steady_capacity = out.above.capacity();
        } else if rep > 2 {
            assert_eq!(
                out.above.capacity(),
                steady_capacity,
                "rep {rep} reallocated"
            );
        }
    }
}

#[test]
fn multi_branch_into_is_bit_identical() {
    let answers = workload(5, 300);
    let threshold = answers.values()[25];
    let m = MultiBranchAdaptiveSparseVector::new(5, 0.7, threshold, true, 3).unwrap();
    let mut scratch = SvtScratch::new();
    let mut out = MultiBranchSvOutput {
        outcomes: Vec::new(),
        spent: 0.0,
        epsilon: 0.0,
    };
    for run in 0..100u64 {
        let expect = m.run_with_scratch(&answers, &mut derive_stream(13, run), &mut scratch);
        m.run_with_scratch_into(
            &answers,
            &mut derive_stream(13, run),
            &mut scratch,
            &mut out,
        );
        assert_eq!(expect, out, "run {run}");
    }
}

#[test]
fn exponential_top_k_into_is_bit_identical_and_reuses_the_buffer() {
    use free_gap_core::exponential_mech::ExponentialMechanism;
    let m = ExponentialMechanism::new(0.9, true).unwrap();
    let answers = workload(6, 300);
    let mut scratch = TopKScratch::new();
    let mut out: Vec<usize> = Vec::new();
    let mut steady_capacity = 0;
    for run in 0..100u64 {
        let expect = m
            .run_top_k_with_scratch(&answers, 8, &mut derive_stream(23, run), &mut scratch)
            .unwrap();
        m.run_top_k_with_scratch_into(
            &answers,
            8,
            &mut derive_stream(23, run),
            &mut scratch,
            &mut out,
        )
        .unwrap();
        assert_eq!(expect, out, "run {run}");

        // Streaming twin shares the same race core and output buffer.
        m.run_top_k_streaming_with_scratch_into(
            answers.values().iter().copied(),
            8,
            &mut derive_stream(23, run),
            &mut scratch,
            &mut out,
        )
        .unwrap();
        assert_eq!(expect, out, "streaming run {run}");
        if run == 0 {
            steady_capacity = out.capacity();
        } else {
            assert_eq!(out.capacity(), steady_capacity, "run {run} reallocated");
        }
    }
}

#[test]
fn staircase_measure_into_is_bit_identical_and_reuses_the_buffer() {
    use free_gap_core::staircase_mech::StaircaseMechanism;
    let m = StaircaseMechanism::new(1.1).unwrap();
    let answers = workload(7, 250);
    let mut scratch = SvtScratch::new();
    let mut out: Vec<f64> = Vec::new();
    let mut steady_capacity = 0;
    for run in 0..100u64 {
        let expect = m.measure_split_with_scratch(
            answers.values(),
            &mut derive_stream(29, run),
            &mut scratch,
        );
        m.measure_split_with_scratch_into(
            answers.values(),
            &mut derive_stream(29, run),
            &mut scratch,
            &mut out,
        );
        assert_eq!(expect, out, "run {run}");

        m.measure_split_streaming_with_scratch_into(
            answers.values().iter().copied(),
            answers.len(),
            &mut derive_stream(29, run),
            &mut scratch,
            &mut out,
        );
        assert_eq!(expect, out, "streaming run {run}");
        if run == 0 {
            steady_capacity = out.capacity();
        } else {
            assert_eq!(out.capacity(), steady_capacity, "run {run} reallocated");
        }
    }
}
