//! # free-gap
//!
//! A production Rust implementation of **"Free Gap Information from the
//! Differentially Private Sparse Vector and Noisy Max Mechanisms"**
//! (Zeyu Ding, Yuxin Wang, Danfeng Zhang, Daniel Kifer — PVLDB 13(3), 2019;
//! arXiv:1904.12773).
//!
//! The paper's observation: two workhorse selection mechanisms of
//! differential privacy silently *discard* information their privacy proofs
//! already pay for.
//!
//! * **Noisy Max / Top-K** can release the noisy *gap* between each selected
//!   query and the runner-up at no extra privacy cost
//!   ([`NoisyTopKWithGap`], Algorithm 1), and a postprocessing BLUE
//!   ([`postprocess::blue`], Theorem 3) folds those gaps into subsequent
//!   measurements for up to a 50% MSE reduction.
//! * **Sparse Vector** can release the gap between each above-threshold
//!   query and the noisy threshold ([`SparseVectorWithGap`]), and an
//!   *adaptive* variant ([`AdaptiveSparseVector`], Algorithm 2) spends less
//!   budget on queries far above the threshold, answering up to twice as
//!   many at the same `ε`.
//!
//! This facade re-exports the whole workspace:
//!
//! | Crate | Contents |
//! |-------|----------|
//! | [`core`](mod@core) (`free-gap-core`) | mechanisms, budget accounting, postprocessing, pipelines |
//! | [`noise`] (`free-gap-noise`) | Laplace / Discrete Laplace / Staircase / Lemma-5 distributions |
//! | [`alignment`] (`free-gap-alignment`) | executable randomness-alignment checker (§4/§8) |
//! | [`data`] (`free-gap-data`) | transaction datasets, surrogate generators, workloads |
//!
//! ## Quickstart
//!
//! ```
//! use free_gap::prelude::*;
//!
//! // Five counting queries; ask for the top 2 with free gaps at ε = 1.
//! let answers = QueryAnswers::counting(vec![120.0, 40.0, 97.0, 80.0, 3.0]);
//! let mech = NoisyTopKWithGap::new(2, 1.0, true).unwrap();
//! let mut rng = rng_from_seed(42);
//! let out = mech.run(&answers, &mut rng).unwrap();
//! println!("winner: query #{} (gap to runner-up ≈ {:.1})",
//!          out.items[0].index, out.items[0].gap);
//! ```
//!
//! See `examples/` for full select-measure-postprocess workflows and the
//! `repro` binary (`cargo run --release -p free-gap-bench --bin repro -- all`)
//! for the paper's complete evaluation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use free_gap_alignment as alignment;
pub use free_gap_core as core;
pub use free_gap_data as data;
pub use free_gap_noise as noise;

/// One-stop imports for the common workflows.
pub mod prelude {
    pub use free_gap_alignment::{check_alignment, AlignedMechanism};
    pub use free_gap_core::answers::QueryAnswers;
    pub use free_gap_core::budget::PrivacyBudget;
    pub use free_gap_core::exponential_mech::ExponentialMechanism;
    pub use free_gap_core::laplace_mech::LaplaceMechanism;
    pub use free_gap_core::metrics::{mse_improvement_percent, selection_quality};
    pub use free_gap_core::noisy_max::{
        pairwise_gap, pairwise_gap_variance, ClassicNoisyMax, ClassicNoisyTopK,
        DiscreteNoisyTopKWithGap, NoisyMaxWithGap, NoisyTopKWithGap, TopKOutput,
    };
    pub use free_gap_core::pipelines::{
        svt_select_measure, svt_select_measure_scratch, topk_select_measure,
        topk_select_measure_scratch, topk_select_measure_with_split,
        topk_select_measure_with_split_scratch, PipelineScratch,
    };
    pub use free_gap_core::postprocess::{
        blue_estimates, blue_variance_ratio, combine_gap_with_measurement, gap_confidence_offset,
        svt_error_ratio, BlueInput,
    };
    pub use free_gap_core::scratch::{SvtScratch, TopKScratch};
    pub use free_gap_core::sparse_vector::{
        AdaptiveSparseVector, Branch, ClassicSparseVector, DiscreteSparseVectorWithGap,
        MultiBranchAdaptiveSparseVector, SparseVectorWithGap,
    };
    pub use free_gap_core::staircase_mech::StaircaseMechanism;
    pub use free_gap_core::MechanismError;
    pub use free_gap_data::{Dataset, ItemCounts, TransactionDb};
    pub use free_gap_noise::rng::rng_from_seed;
    pub use free_gap_noise::{ContinuousDistribution, Laplace, LaplaceDiff};
}

// Re-export the most-used types at the crate root as well.
pub use free_gap_core::answers::QueryAnswers;
pub use free_gap_core::noisy_max::NoisyTopKWithGap;
pub use free_gap_core::sparse_vector::{AdaptiveSparseVector, SparseVectorWithGap};
pub use free_gap_core::{postprocess, MechanismError};
