//! Test configuration, errors, and deterministic per-test RNG streams.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The RNG driving strategy generation (one stream per test function).
pub type TestRng = SmallRng;

/// Configuration for a `proptest!` block (`ProptestConfig` in the prelude).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A failed property-test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Builds a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic RNG for a named test: the same test name always yields the
/// same case sequence, so failures reproduce across runs and machines.
pub fn rng_for_test(name: &str) -> TestRng {
    // FNV-1a over the test name, then SplitMix expansion in seed_from_u64.
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1000_0000_01b3);
    }
    TestRng::seed_from_u64(hash)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn per_test_streams_are_deterministic_and_distinct() {
        let mut a = rng_for_test("alpha");
        let mut b = rng_for_test("alpha");
        let mut c = rng_for_test("beta");
        let x = a.next_u64();
        assert_eq!(x, b.next_u64());
        assert_ne!(x, c.next_u64());
    }

    #[test]
    fn config_defaults() {
        assert_eq!(Config::default().cases, 256);
        assert_eq!(Config::with_cases(64).cases, 64);
    }
}
