//! Offline, API-compatible subset of the
//! [`proptest`](https://crates.io/crates/proptest) crate, vendored so the
//! workspace builds without network access.
//!
//! The subset covers what the `free-gap` test-suite uses:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]`);
//! * range strategies (`0.0f64..1.0`, `0u64..100`, …);
//! * [`collection::vec`] and [`bool::ANY`];
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`test_runner::Config`] (`ProptestConfig::with_cases`).
//!
//! Unlike real proptest there is **no shrinking**: a failing case reports its
//! inputs and case index so it can be reproduced, but is not minimized. Case
//! generation is deterministic per test name, so CI failures reproduce
//! locally.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bool;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the current property test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current property test case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Fails the current property test case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} == {:?}", a, b);
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` that runs the body over `Config::cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($cfg) $($rest)* }
    };
    (@with_config ($cfg:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut runner_rng =
                    $crate::test_runner::rng_for_test(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate(
                        &($strat),
                        &mut runner_rng,
                    );)+
                    // Render inputs up front: the body may move them.
                    let rendered_inputs = ::std::vec![$(::std::format!(
                        "{} = {:?}", stringify!($arg), $arg
                    )),+].join(", ");
                    let outcome = (|| -> ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    if let ::core::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\ninputs: {}",
                            stringify!($name),
                            case,
                            config.cases,
                            e,
                            rendered_inputs,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! {
            @with_config ($crate::test_runner::Config::default()) $($rest)*
        }
    };
}
