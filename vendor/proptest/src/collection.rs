//! Collection strategies (`proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Length specification for [`vec()`]: a fixed size or a half-open range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec-length range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty vec-length range");
        Self { lo, hi: hi + 1 }
    }
}

/// A strategy for `Vec<S::Value>` with length drawn from `size`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.lo..self.size.hi);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Builds a vector strategy: `vec(element, 0..20)` or `vec(element, 5)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn vec_lengths_respect_range() {
        let s = vec(0.0f64..1.0, 2..5);
        let mut rng = rng_for_test("vec_lengths_respect_range");
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn nested_vec_strategies_compose() {
        let s = vec(vec(0u32..10, 0..4), 1..3);
        let mut rng = rng_for_test("nested_vec_strategies_compose");
        let v = s.generate(&mut rng);
        assert!(!v.is_empty() && v.len() < 3);
        for inner in &v {
            assert!(inner.len() < 4);
        }
    }

    #[test]
    fn fixed_size_vec() {
        let s = vec(0u32..10, 7usize);
        let mut rng = rng_for_test("fixed_size_vec");
        assert_eq!(s.generate(&mut rng).len(), 7);
    }
}
