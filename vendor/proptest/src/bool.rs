//! Boolean strategies (`proptest::bool`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Uniform over `{true, false}`.
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// The uniform boolean strategy (`proptest::bool::ANY`).
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn any_produces_both_values() {
        let mut rng = rng_for_test("any_produces_both_values");
        let draws: Vec<bool> = (0..64).map(|_| ANY.generate(&mut rng)).collect();
        assert!(draws.iter().any(|&b| b));
        assert!(draws.iter().any(|&b| !b));
    }
}
