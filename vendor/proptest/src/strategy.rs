//! The [`Strategy`] trait and range-based strategies.

use crate::test_runner::TestRng;
use rand::Rng;

/// A generator of test-case inputs.
///
/// Unlike real proptest, strategies here generate values directly (no value
/// trees, no shrinking).
pub trait Strategy {
    /// The value type generated.
    type Value: std::fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 strategy range");
        rng.gen_range(self.start..self.end)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}

int_range_strategy!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

/// A strategy that always yields the same value (`proptest::strategy::Just`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::rng_for_test;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = rng_for_test("ranges_stay_in_bounds");
        for _ in 0..1000 {
            let x = (0.5f64..2.5).generate(&mut rng);
            assert!((0.5..2.5).contains(&x));
            let k = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&k));
            let s = (-4i64..-1).generate(&mut rng);
            assert!((-4..-1).contains(&s));
        }
    }

    #[test]
    fn just_yields_constant() {
        let mut rng = rng_for_test("just_yields_constant");
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }
}
