//! Concrete generators: [`StdRng`] (ChaCha12) and [`SmallRng`]
//! (Xoshiro256++).

use crate::{splitmix64, RngCore, SeedableRng};

/// The workspace's default deterministic generator: ChaCha with 12 rounds,
/// the same algorithm family upstream `rand::rngs::StdRng` uses.
#[derive(Debug, Clone)]
pub struct StdRng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    index: usize,
}

impl StdRng {
    fn refill(&mut self) {
        let mut x = [0u32; 16];
        // "expand 32-byte k" constants.
        x[0] = 0x6170_7865;
        x[1] = 0x3320_646e;
        x[2] = 0x7962_2d32;
        x[3] = 0x6b20_6574;
        x[4..12].copy_from_slice(&self.key);
        x[12] = self.counter as u32;
        x[13] = (self.counter >> 32) as u32;
        // Nonce words stay zero: a seeded PRNG has no message context.
        let input = x;
        for _ in 0..6 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (slot, (word, orig)) in self.buf.iter_mut().zip(x.iter().zip(&input)) {
            *slot = word.wrapping_add(*orig);
        }
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

#[inline(always)]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        let mut rng = Self {
            key,
            counter: 0,
            buf: [0; 16],
            index: 16,
        };
        rng.refill();
        rng
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let v = self.buf[self.index];
        self.index += 1;
        v
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

/// A small, fast, non-cryptographic generator: Xoshiro256++.
///
/// This is the generator behind the workspace's Monte-Carlo fast path; it is
/// several times cheaper per draw than [`StdRng`] while passing BigCrush.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut s = [0u64; 4];
        for (word, chunk) in s.iter_mut().zip(seed.chunks_exact(8)) {
            *word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        }
        if s == [0; 4] {
            // The all-zero state is a fixed point of xoshiro; remix it.
            let mut state = 0xDEAD_BEEF_CAFE_F00Du64;
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
        }
        Self { s }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chacha_blocks_advance() {
        let mut rng = StdRng::from_seed([1; 32]);
        // Draw through more than one 16-word block; outputs keep changing.
        let xs: Vec<u32> = (0..48).map(|_| rng.next_u32()).collect();
        let distinct: std::collections::HashSet<_> = xs.iter().collect();
        assert!(distinct.len() > 40, "suspiciously repetitive ChaCha output");
    }

    #[test]
    fn xoshiro_reference_vector() {
        // First outputs for state [1, 2, 3, 4] from the published
        // xoshiro256++ reference implementation.
        let mut s = [0u8; 32];
        s[0] = 1;
        s[8] = 2;
        s[16] = 3;
        s[24] = 4;
        let mut rng = SmallRng::from_seed(s);
        assert_eq!(rng.next_u64(), 41943041);
        assert_eq!(rng.next_u64(), 58720359);
        assert_eq!(rng.next_u64(), 3588806011781223);
    }

    #[test]
    fn zero_seed_is_remixed() {
        let mut rng = SmallRng::from_seed([0; 32]);
        assert_ne!(rng.next_u64(), 0);
    }
}
