//! Offline, API-compatible subset of the [`rand`](https://crates.io/crates/rand)
//! crate (0.8 line), vendored so the workspace builds without network access.
//!
//! Only the surface the `free-gap` crates actually use is provided:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_range` and `gen_bool`;
//! * [`SeedableRng`] with `from_seed` / `seed_from_u64`;
//! * [`rngs::StdRng`] — ChaCha12, the same algorithm family upstream `StdRng`
//!   uses (cryptographic-quality, deliberately not the fastest option);
//! * [`rngs::SmallRng`] — Xoshiro256++, the fast non-cryptographic generator
//!   the Monte-Carlo paths lean on;
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! Stream values are deterministic per generator but are **not** guaranteed
//! to match upstream `rand` bit-for-bit; the workspace only relies on its own
//! internal determinism (same seed ⇒ same stream).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an `Rng` (the `Standard` distribution of
/// upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    #[inline(always)]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline(always)]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    #[inline(always)]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    #[inline(always)]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline(always)]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`], parameterized by the element
/// type so integer-literal ranges infer from the call site (as upstream).
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::sample_standard(rng);
        self.start + (self.end - self.start) * u
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (rng.next_u64() % span) as i128) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // span == 0 means the full u64 domain (lo = 0, hi = u64::MAX).
                let draw = if span == 0 { rng.next_u64() } else { rng.next_u64() % span };
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u64, u32, u16, u8, i64, i32, i16, i8);

/// User-facing random-value interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64.
    fn seed_from_u64(state: u64) -> Self {
        let mut state = state;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let n = splitmix64(&mut state).to_le_bytes();
            let len = chunk.len();
            chunk.copy_from_slice(&n[..len]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::{SmallRng, StdRng};

    #[test]
    fn std_rng_deterministic_and_seed_sensitive() {
        let mut a = StdRng::from_seed([7; 32]);
        let mut b = StdRng::from_seed([7; 32]);
        let mut c = StdRng::from_seed([8; 32]);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn small_rng_deterministic_and_seed_sensitive() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        let mut c = SmallRng::seed_from_u64(2);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(b.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_samples_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(5u64..=9);
            assert!((5..=9).contains(&y));
            let z = rng.gen_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&z));
            let w = rng.gen_range(-5i64..-1);
            assert!((-5..-1).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
