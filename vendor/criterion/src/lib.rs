//! Offline, API-compatible subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmarking crate,
//! vendored so the workspace builds without network access.
//!
//! It implements the `criterion_group!`/`criterion_main!` entry points, the
//! `benchmark_group` / `bench_function` / `bench_with_input` API, and a
//! simple median-of-samples timer. Compared to real criterion there is no
//! statistical analysis, no HTML report and no saved baselines — each
//! benchmark prints one line:
//!
//! ```text
//! group/name              median   12.345 µs/iter   (20 samples × 4096 iters)
//! ```
//!
//! `--quick` (or the `CRITERION_QUICK=1` env var) cuts sample counts for
//! smoke-testing benches in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    /// Target measurement time per benchmark (split across samples).
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var_os("CRITERION_QUICK").is_some_and(|v| v != "0");
        if quick {
            Self {
                sample_size: 5,
                measurement: Duration::from_millis(50),
            }
        } else {
            Self {
                sample_size: 50,
                measurement: Duration::from_millis(500),
            }
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named parameter for [`BenchmarkGroup::bench_with_input`].
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's display convention.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// A group of related benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_bench(&label, self.criterion, |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.name);
        run_bench(&label, self.criterion, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`iter`](Bencher::iter) exactly once.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the scheduled number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(label: &str, criterion: &Criterion, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: find an iteration count giving ~1/samples of the target
    // measurement time per sample.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_sample = criterion.measurement / criterion.sample_size as u32;
        if b.elapsed >= per_sample || iters >= 1 << 30 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            8.0
        } else {
            (per_sample.as_secs_f64() / b.elapsed.as_secs_f64()).clamp(1.5, 8.0)
        };
        iters = ((iters as f64) * grow).ceil() as u64;
    }

    let mut per_iter_ns: Vec<f64> = (0..criterion.sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    println!(
        "{label:<48} median {:>12}/iter   ({} samples x {} iters)",
        format_ns(median),
        criterion.sample_size,
        iters
    );
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; nothing to parse —
            // the stub accepts and ignores them (`--quick` is read by
            // `Criterion::default`).
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_like_criterion() {
        let id = BenchmarkId::new("topk", 1024);
        assert_eq!(id.name, "topk/1024");
    }

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(3));
        let mut group = c.benchmark_group("smoke");
        let mut count = 0u64;
        group.bench_function("noop", |b| b.iter(|| count += 1));
        group.finish();
        assert!(count > 0, "routine must have been executed");
    }

    #[test]
    fn format_ns_units() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("µs"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
        assert!(format_ns(12_300_000_000.0).ends_with("s"));
    }
}
