//! Offline, API-compatible subset of the
//! [`criterion`](https://crates.io/crates/criterion) benchmarking crate,
//! vendored so the workspace builds without network access.
//!
//! It implements the `criterion_group!`/`criterion_main!` entry points, the
//! `benchmark_group` / `bench_function` / `bench_with_input` API, and a
//! robust median ± MAD timer with simple outlier rejection: samples farther
//! than 3 × MAD from the raw median are discarded (CI neighbors, page
//! faults, thermal events) and the reported median/MAD are recomputed on
//! the survivors, so small regressions stay visible above scheduler noise.
//! Compared to real criterion there is no distribution fitting, no HTML
//! report and no saved baselines — each benchmark prints one line:
//!
//! ```text
//! group/name       median   12.345 µs/iter ± 0.120 µs MAD   (20 samples × 4096 iters, 1 outlier)
//! ```
//!
//! `--quick` (or the `CRITERION_QUICK=1` env var) cuts sample counts for
//! smoke-testing benches in CI.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    /// Target measurement time per benchmark (split across samples).
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var_os("CRITERION_QUICK").is_some_and(|v| v != "0");
        if quick {
            Self {
                sample_size: 5,
                measurement: Duration::from_millis(50),
            }
        } else {
            Self {
                sample_size: 50,
                measurement: Duration::from_millis(500),
            }
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named parameter for [`BenchmarkGroup::bench_with_input`].
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`, criterion's display convention.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

/// A group of related benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into());
        run_bench(&label, self.criterion, |b| f(b));
        self
    }

    /// Runs a benchmark parameterized by `input`.
    ///
    /// `id` is taken by value to stay signature-compatible with real
    /// criterion, whose `BenchmarkId` is consumed here.
    #[allow(clippy::needless_pass_by_value)]
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.name);
        run_bench(&label, self.criterion, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility; prints nothing extra).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`iter`](Bencher::iter) exactly once.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the scheduled number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench(label: &str, criterion: &Criterion, mut f: impl FnMut(&mut Bencher)) {
    // Calibrate: find an iteration count giving ~1/samples of the target
    // measurement time per sample.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_sample = criterion.measurement / criterion.sample_size as u32;
        if b.elapsed >= per_sample || iters >= 1 << 30 {
            break;
        }
        let grow = if b.elapsed.is_zero() {
            8.0
        } else {
            (per_sample.as_secs_f64() / b.elapsed.as_secs_f64()).clamp(1.5, 8.0)
        };
        iters = ((iters as f64) * grow).ceil() as u64;
    }

    let per_iter_ns: Vec<f64> = (0..criterion.sample_size)
        .map(|_| {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            b.elapsed.as_nanos() as f64 / iters as f64
        })
        .collect();
    let summary = robust_summary(&per_iter_ns);
    println!(
        "{label:<48} median {:>12}/iter ± {} MAD   ({} samples x {} iters, {} outlier{})",
        format_ns(summary.median),
        format_ns(summary.mad),
        criterion.sample_size,
        iters,
        summary.outliers,
        if summary.outliers == 1 { "" } else { "s" },
    );
}

/// Robust per-iteration timing statistics: median and median absolute
/// deviation after outlier rejection.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Summary {
    /// Median of the retained samples.
    median: f64,
    /// Median absolute deviation of the retained samples.
    mad: f64,
    /// Samples rejected as outliers (farther than 3 × MAD from the raw
    /// median).
    outliers: usize,
}

fn median_of(sorted: &[f64]) -> f64 {
    sorted[sorted.len() / 2]
}

/// Computes median + MAD over `samples`, rejecting samples farther than
/// 3 × MAD from the raw median and recomputing both on the survivors. When
/// the raw MAD is 0 (at least half the samples identical) no rejection is
/// applied — every deviation would count as infinite-sigma.
fn robust_summary(samples: &[f64]) -> Summary {
    assert!(!samples.is_empty(), "need at least one sample");
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let raw_median = median_of(&sorted);
    let mut deviations: Vec<f64> = sorted.iter().map(|x| (x - raw_median).abs()).collect();
    deviations.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let raw_mad = median_of(&deviations);
    if raw_mad == 0.0 {
        return Summary {
            median: raw_median,
            mad: 0.0,
            outliers: 0,
        };
    }
    let cutoff = 3.0 * raw_mad;
    // `sorted` is ordered, so the retained slice is contiguous and ordered.
    let kept: Vec<f64> = sorted
        .iter()
        .copied()
        .filter(|x| (x - raw_median).abs() <= cutoff)
        .collect();
    let outliers = sorted.len() - kept.len();
    let median = median_of(&kept);
    let mut kept_dev: Vec<f64> = kept.iter().map(|x| (x - median).abs()).collect();
    kept_dev.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    Summary {
        median,
        mad: median_of(&kept_dev),
        outliers,
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.3} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.3} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // Cargo passes harness flags like `--bench`; nothing to parse —
            // the stub accepts and ignores them (`--quick` is read by
            // `Criterion::default`).
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats_like_criterion() {
        let id = BenchmarkId::new("topk", 1024);
        assert_eq!(id.name, "topk/1024");
    }

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(3));
        let mut group = c.benchmark_group("smoke");
        let mut count = 0u64;
        group.bench_function("noop", |b| b.iter(|| count += 1));
        group.finish();
        assert!(count > 0, "routine must have been executed");
    }

    #[test]
    fn robust_summary_plain_median_and_mad() {
        // Odd count, no outliers: median 5, deviations {0,1,1,2,2} → MAD 1.
        let s = robust_summary(&[3.0, 4.0, 5.0, 6.0, 7.0]);
        assert_eq!(s.median, 5.0);
        assert_eq!(s.mad, 1.0);
        assert_eq!(s.outliers, 0);
    }

    #[test]
    fn robust_summary_rejects_far_samples() {
        // One wild sample (a CI neighbor stealing the core) must not drag
        // the reported median/MAD.
        let samples = [10.0, 10.5, 11.0, 11.5, 12.0, 500.0];
        let s = robust_summary(&samples);
        assert_eq!(s.outliers, 1);
        assert!(s.median <= 12.0, "median {}", s.median);
        assert!(s.mad <= 1.0, "mad {}", s.mad);
    }

    #[test]
    fn robust_summary_zero_mad_skips_rejection() {
        // Half-identical samples give MAD 0; rejection must not nuke the
        // rest of the distribution.
        let s = robust_summary(&[7.0, 7.0, 7.0, 7.0, 9.0, 42.0]);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.mad, 0.0);
        assert_eq!(s.outliers, 0);
    }

    #[test]
    fn format_ns_units() {
        assert!(format_ns(12.3).ends_with("ns"));
        assert!(format_ns(12_300.0).ends_with("µs"));
        assert!(format_ns(12_300_000.0).ends_with("ms"));
        assert!(format_ns(12_300_000_000.0).ends_with("s"));
    }
}
