//! Auditing the privacy proofs: executing the paper's randomness alignments.
//!
//! The paper proves its mechanisms private by exhibiting *local alignments*
//! (§4): maps φ of the noise vector such that running the mechanism on any
//! adjacent database with the aligned noise reproduces the output exactly,
//! at bounded cost. History shows such proofs are easy to get wrong (Lyu et
//! al. catalogue a series of broken SVT variants) — so this library makes
//! the alignments executable and *checks them on concrete runs*.
//!
//! Run with: `cargo run --release --example alignment_audit`

use free_gap::alignment::{check_alignment, AdjacencyModel, Perturbation};
use free_gap::prelude::*;
use free_gap_noise::rng::rng_from_seed;

fn main() {
    let answers = QueryAnswers::counting(vec![120.0, 80.0, 97.0, 33.0, 101.0, 60.0, 5.0]);
    let mut rng = rng_from_seed(404);
    let trials = 2_000;

    println!("auditing Noisy-Top-K-with-Gap (Lemma 2 / Eq. 2), ε = 0.7, {trials} trials…");
    let topk = NoisyTopKWithGap::new(3, 0.7, true).unwrap();
    let mut max_cost: f64 = 0.0;
    for t in 0..trials {
        let model = if t % 2 == 0 {
            AdjacencyModel::MonotoneUp
        } else {
            AdjacencyModel::MonotoneDown
        };
        let p = Perturbation::random(model, answers.len(), &mut rng);
        let neighbor = answers.perturbed(p.deltas());
        let report = check_alignment(&topk, &answers, &neighbor, &mut rng)
            .unwrap_or_else(|e| panic!("alignment violated: {e}"));
        max_cost = max_cost.max(report.cost);
    }
    println!("  ✓ outputs matched on every trial; max alignment cost {max_cost:.4} ≤ ε = 0.7");

    println!("\nauditing Adaptive-SVT-with-Gap (Lemma 4 / Eq. 3), ε = 0.7, {trials} trials…");
    let adaptive = AdaptiveSparseVector::new(2, 0.7, 90.0, true).unwrap();
    let mut max_cost: f64 = 0.0;
    for t in 0..trials {
        let model = if t % 2 == 0 {
            AdjacencyModel::MonotoneUp
        } else {
            AdjacencyModel::MonotoneDown
        };
        let p = Perturbation::random(model, answers.len(), &mut rng);
        let neighbor = answers.perturbed(p.deltas());
        let report = check_alignment(&adaptive, &answers, &neighbor, &mut rng)
            .unwrap_or_else(|e| panic!("alignment violated: {e}"));
        max_cost = max_cost.max(report.cost);
    }
    println!("  ✓ outputs matched on every trial; max alignment cost {max_cost:.4} ≤ ε = 0.7");

    // The checker is not a rubber stamp. The DP literature's famous broken
    // SVT variants (catalogued by Lyu et al., the paper's [31]) fail it in
    // exactly the ways their flawed proofs fail:
    use free_gap::core::sparse_vector::broken::{NoisyValueSvt, UnscaledNoiseSvt};

    println!("\nnegative control #1: Roth's noisy-value SVT (Lyu Alg. 3)…");
    let noisy_value = NoisyValueSvt::new(1, 1.0, 90.0).unwrap();
    let near = QueryAnswers::counting(vec![90.0, 90.0, 90.0]);
    let neighbor = near.perturbed(&[-1.0, -1.0, -1.0]);
    let mut failures = 0;
    for _ in 0..500 {
        if check_alignment(&noisy_value, &near, &neighbor, &mut rng).is_err() {
            failures += 1;
        }
    }
    println!(
        "  ✓ value-preserving alignment failed on {failures}/500 runs \
         (near-threshold wins flip) — the \"free noisy value\" proof cannot close"
    );

    println!("\nnegative control #2: Lee-Clifton unscaled-noise SVT (Lyu Alg. 5)…");
    let unscaled = UnscaledNoiseSvt::new(3, 0.6, 5.0).unwrap();
    let high = QueryAnswers::counting(vec![50.0, 50.0, 50.0]);
    let neighbor = high.perturbed(&[-1.0, -1.0, -1.0]);
    let mut overruns = 0;
    for _ in 0..100 {
        if check_alignment(&unscaled, &high, &neighbor, &mut rng).is_err() {
            overruns += 1;
        }
    }
    println!(
        "  ✓ alignment cost overran the claimed ε = 0.6 on {overruns}/100 runs \
         (actual worst case: {:.1})",
        unscaled.worst_case_alignment_cost()
    );

    // Meanwhile an honest over-claim is caught too: sensitivity violations.
    println!("\nnegative control #3: sensitivity-violating workload on correct SVT…");
    let correct = ClassicSparseVector::new(2, 0.35, 90.0, true)
        .unwrap()
        .with_threshold_share(0.5)
        .unwrap();
    let mut violations = 0;
    for _ in 0..200 {
        let p = Perturbation::extreme(AdjacencyModel::MonotoneUp, answers.len(), 0);
        // |δ| = 2 per query via two unit perturbations — an illegal neighbor.
        let neighbor = answers.perturbed(p.deltas()).perturbed(p.deltas());
        if check_alignment(&correct, &answers, &neighbor, &mut rng).is_err() {
            violations += 1;
        }
    }
    println!("  ✓ checker flagged {violations}/200 runs of the |δ| = 2 workload");
}
