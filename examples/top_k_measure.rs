//! The §5.2 workflow: select the top-k queries, measure them, and use the
//! free gaps to cut the measurement error by up to half.
//!
//! A data analyst wants both the *identities* and the *values* of the top-k
//! most frequent items. The standard recipe splits the budget: half to
//! select (Noisy-Top-K), half to measure (Laplace). The paper's insight is
//! that the selection step can hand back k free gaps, and the BLUE of
//! Theorem 3 folds them into the measurements.
//!
//! Run with: `cargo run --release --example top_k_measure`

use free_gap::prelude::*;
use free_gap_noise::rng::derive_stream;

fn main() {
    let db = Dataset::T40I10D100K.generate_scaled(0.05, 11);
    let counts = db.item_counts();
    let answers = QueryAnswers::from_counts(counts.as_u64());

    let epsilon = 0.7;
    let k = 10;
    let runs = 2_000;

    println!(
        "workload: {} counting queries; ε = {epsilon}, k = {k}, {runs} runs\n",
        answers.len()
    );

    // Monte-Carlo the full pipeline to show the MSE effect.
    let mut sse_baseline = 0.0;
    let mut sse_blue = 0.0;
    let mut pairs = 0usize;
    for run in 0..runs {
        let mut rng = derive_stream(99, run);
        let r = topk_select_measure(&answers, k, epsilon, &mut rng).unwrap();
        for i in 0..k {
            sse_baseline += (r.measurements[i] - r.truths[i]).powi(2);
            sse_blue += (r.blue[i] - r.truths[i]).powi(2);
            pairs += 1;
        }
    }
    let mse_baseline = sse_baseline / pairs as f64;
    let mse_blue = sse_blue / pairs as f64;

    println!("measurement-only baseline MSE : {mse_baseline:10.1}");
    println!("BLUE (measurements + gaps) MSE: {mse_blue:10.1}");
    println!(
        "improvement: {:.1}%  (Corollary 1 predicts {:.1}% at k = {k}, λ = 1)",
        mse_improvement_percent(mse_baseline, mse_blue),
        100.0 * (1.0 - blue_variance_ratio(k, 1.0)),
    );

    // One concrete run, for intuition.
    let mut rng = rng_from_seed(7);
    let r = topk_select_measure(&answers, k, epsilon, &mut rng).unwrap();
    println!("\none run, per-query estimates (true / measured / BLUE):");
    for i in 0..k {
        println!(
            "  item {:>4}: {:>8.0} / {:>9.1} / {:>9.1}",
            r.indices[i], r.truths[i], r.measurements[i], r.blue[i]
        );
    }
}
