//! Streaming SVT over sharded, lazily generated query streams.
//!
//! The serve-at-scale scenario the streaming layer exists for: a server
//! answers threshold queries for many shards (users, partitions, tenants),
//! and each shard's query answers are *produced on demand* — there is never
//! a materialized `Vec` of the full stream. The mechanism pulls answers one
//! at a time and, because SVT's budget pays only for `⊤`s, halts after a
//! short prefix of even a million-query stream; queries past the halt are
//! never generated at all.
//!
//! Run with `cargo run --release --example streaming_svt`.

use free_gap::prelude::*;
use free_gap_core::sparse_vector::AdaptiveOutcome;
use free_gap_noise::rng::{derive_stream, splitmix64};
use std::cell::Cell;

/// Lazily generates shard `shard`'s query-answer stream: a deterministic
/// mix of mostly-low counts with occasional spikes, computed per index —
/// no allocation, no backing vector.
fn shard_stream(shard: u64, len: usize) -> impl Iterator<Item = f64> {
    (0..len as u64).map(move |i| {
        let mut state = shard.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ i;
        let h = splitmix64(&mut state);
        let base = (h % 100) as f64; // uniform low counts 0..100
        if h.is_multiple_of(23) {
            base + 150.0 + (h >> 32 & 0xFF) as f64 // a spike well above T
        } else {
            base
        }
    })
}

fn main() {
    let shards = 4u64;
    let stream_len = 1_000_000usize;
    let threshold = 120.0;
    let k = 8;

    println!("streaming SVT: {shards} shards x {stream_len} lazily generated queries each");
    println!("threshold T = {threshold}, budget sized for k = {k} answers, eps = 0.7\n");

    let svt = SparseVectorWithGap::new(k, 0.7, threshold, true).unwrap();
    let adaptive = AdaptiveSparseVector::new(k, 0.7, threshold, true).unwrap();
    let mut scratch = SvtScratch::new();

    for shard in 0..shards {
        // Count how many answers the mechanism actually pulls: the early
        // stop means this is a small prefix of the million-query stream.
        let pulled = Cell::new(0usize);
        let stream = shard_stream(shard, stream_len).inspect(|_| pulled.set(pulled.get() + 1));
        let out =
            svt.run_streaming_with_scratch(stream, &mut derive_stream(42, shard), &mut scratch);
        println!(
            "shard {shard}: SparseVectorWithGap answered {:>2} tops, pulled {:>6} of {stream_len} queries ({:.3}% of the stream)",
            out.answered(),
            pulled.get(),
            100.0 * pulled.get() as f64 / stream_len as f64,
        );

        let pulled = Cell::new(0usize);
        let stream = shard_stream(shard, stream_len).inspect(|_| pulled.set(pulled.get() + 1));
        let out = adaptive.run_streaming(stream, &mut derive_stream(1042, shard));
        let top = out.answered_via(Branch::Top);
        let first_gap = out.outcomes.iter().find_map(|o| match o {
            AdaptiveOutcome::Above { gap, .. } => Some(*gap),
            AdaptiveOutcome::Below => None,
        });
        println!(
            "shard {shard}: AdaptiveSparseVector  answered {:>2} tops ({top} cheap), pulled {:>6} queries, first free gap ≈ {:.1}",
            out.answered(),
            pulled.get(),
            first_gap.unwrap_or(f64::NAN),
        );
    }

    println!("\nno query vector was ever materialized: each shard's answers were");
    println!("generated on demand and generation stopped the moment the budget ran out.");
}
