//! Quickstart: the free gap in 60 lines.
//!
//! Selects the top-3 most frequent items of a small synthetic retail
//! dataset under differential privacy, showing what the classic mechanism
//! returns versus what the gap-releasing mechanism returns *at the same
//! privacy cost*.
//!
//! Run with: `cargo run --release --example quickstart`

use free_gap::prelude::*;

fn main() {
    // A tiny BMS-POS-like dataset: transactions over an item universe.
    let db = Dataset::BmsPos.generate_scaled(0.002, 7);
    let counts = db.item_counts();
    let answers = QueryAnswers::from_counts(counts.as_u64());
    println!(
        "dataset: {} transactions, {} items",
        db.num_records(),
        db.num_unique_items()
    );

    let epsilon = 1.0;
    let k = 3;
    let mut rng = rng_from_seed(2019);

    // The classic mechanism: indices only.
    let classic = ClassicNoisyTopK::new(k, epsilon, true).unwrap();
    let indices = classic.run(&answers, &mut rng).unwrap();
    println!("\nclassic Noisy Top-{k} (ε = {epsilon}): items {indices:?} — and that's all");

    // The paper's mechanism: same privacy cost, same selection quality,
    // plus one free gap per selected query.
    let with_gap = NoisyTopKWithGap::new(k, epsilon, true).unwrap();
    let out = with_gap.run(&answers, &mut rng).unwrap();
    println!("\nNoisy-Top-{k}-with-Gap (ε = {epsilon}, same cost):");
    for (rank, item) in out.items.iter().enumerate() {
        println!(
            "  #{rank_n}: item {idx:>4}  (true count {truth:>5}, noisy gap to next ≈ {gap:8.1})",
            rank_n = rank + 1,
            idx = item.index,
            truth = counts.count(item.index),
            gap = item.gap,
        );
    }

    // The gaps telescope: a free estimate of the spread between the best
    // and the runner-up after the selection, with known variance.
    let spread = pairwise_gap(&out, 1, k + 1);
    let sd = pairwise_gap_variance(k, epsilon, true).sqrt();
    println!("\nfree estimate of (best − runner-up after top-{k}): {spread:.1} ± {sd:.1} (1σ)",);
    println!("privacy spent either way: ε = {epsilon} — the gaps cost nothing.");
}
