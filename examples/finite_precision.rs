//! Finite-precision mechanisms: discrete Laplace Top-K and staircase
//! measurement (§5.1 "implementation issues" + §3.1 noise alternatives).
//!
//! Real deployments cannot sample continuous Laplace noise; they sample on
//! a lattice of step γ, where ties are possible and the guarantee is
//! (ε, δ)-DP with δ bounded by Appendix A.1. This example runs the
//! integer-count Top-K end to end, prints its δ ledger at several lattice
//! granularities, and compares Laplace against variance-optimal staircase
//! measurement noise.
//!
//! Run with: `cargo run --release --example finite_precision`

use free_gap::prelude::*;
use free_gap_noise::rng::derive_stream;

fn main() {
    let db = Dataset::T40I10D100K.generate_scaled(0.05, 21);
    let counts = db.item_counts();
    let answers = QueryAnswers::from_counts(counts.as_u64());
    let (k, epsilon) = (5, 1.0);

    // --- Discrete-Laplace Top-K on integer counts (γ = 1) ---
    let mech = DiscreteNoisyTopKWithGap::new(k, epsilon, true).unwrap();
    let out = mech.run(&answers, &mut rng_from_seed(1)).unwrap();
    println!("discrete Noisy-Top-{k}-with-Gap (γ = 1, integer counts):");
    for item in &out.items {
        println!(
            "  item {:>4}: integer gap {:>4}  (true count {})",
            item.index,
            item.gap as i64,
            counts.count(item.index)
        );
    }

    // The (ε, δ) ledger from Appendix A.1: δ = n²γε'(1 + e⁻¹).
    let n = answers.len();
    println!("\n(ε, δ) ledger for n = {n} queries:");
    for (label, gamma) in [
        ("counts (γ = 1)", 1.0),
        ("f32-ish (γ = 2⁻²³)", 2f64.powi(-23)),
        ("f64 (γ = 2⁻⁵²)", 2f64.powi(-52)),
    ] {
        let m = DiscreteNoisyTopKWithGap::with_gamma(k, epsilon, true, gamma).unwrap();
        println!("  {label:<22} δ ≤ {:.3e}", m.delta(n));
    }
    println!("  (γ = 1 on raw counts is fine here only because counts are huge;");
    println!("   production would discretize at machine epsilon.)");

    // --- Staircase vs Laplace measurement ---
    println!("\nmeasuring the selected queries: Laplace vs staircase noise");
    let truths: Vec<f64> = out
        .items
        .iter()
        .map(|it| counts.count(it.index) as f64)
        .collect();
    for eps in [0.5, 2.0, 8.0] {
        let lap = LaplaceMechanism::new(eps).unwrap();
        let stair = StaircaseMechanism::new(eps).unwrap();
        let mut lap_sse = 0.0;
        let mut stair_sse = 0.0;
        let runs = 20_000;
        for run in 0..runs {
            let mut rng = derive_stream(7, run);
            for (m, t) in lap.run(&truths, &mut rng).iter().zip(&truths) {
                lap_sse += (m - t) * (m - t);
            }
            for (m, t) in stair.measure_split(&truths, &mut rng).iter().zip(&truths) {
                stair_sse += (m - t) * (m - t);
            }
        }
        println!(
            "  ε = {eps:>4}: Laplace MSE {:>10.2}, staircase MSE {:>10.2}  ({:+.1}%)",
            lap_sse / (runs as f64 * truths.len() as f64),
            stair_sse / (runs as f64 * truths.len() as f64),
            100.0 * (stair_sse / lap_sse - 1.0),
        );
    }
    println!("\nstaircase matches Laplace at small ε and wins at large ε —");
    println!("the Geng-Viswanath optimality the paper cites in §3.1.");
}
