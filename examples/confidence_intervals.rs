//! Free lower-confidence intervals from SVT gaps (Lemma 5 / §6.2).
//!
//! When Sparse-Vector-with-Gap reports a gap γ for a query, `γ + T` is a
//! noisy estimate of the true answer whose noise is the difference of two
//! Laplace variables. Lemma 5 gives that distribution in closed form, so we
//! can attach calibrated lower bounds to every answer — for free.
//!
//! This example validates the calibration empirically: the c-confidence
//! bound should cover the truth in a c fraction of runs, for every c.
//!
//! Run with: `cargo run --release --example confidence_intervals`

use free_gap::prelude::*;
use free_gap_noise::rng::derive_stream;

fn main() {
    let truth = 2_000.0;
    let threshold = 1_500.0;
    let epsilon = 0.5;
    let m = SparseVectorWithGap::new(1, epsilon, threshold, true).unwrap();
    let answers = QueryAnswers::counting(vec![truth]);

    // Lemma 5 parameters for this mechanism: the query-noise rate is ε₂
    // (k = 1, monotone ⇒ scale 1/ε₂) and the threshold-noise rate ε₁.
    let rate_query = m.epsilon2();
    let rate_threshold = m.epsilon1();
    println!(
        "SVT-with-Gap: ε = {epsilon} (threshold share {:.3}), query rate {:.3}, threshold rate {:.3}",
        m.epsilon1() / epsilon,
        rate_query,
        rate_threshold
    );
    println!("true answer {truth}, threshold {threshold}\n");

    println!("confidence   offset t_c   empirical coverage   certifies q ≥ T?");
    let runs = 30_000;
    for confidence in [0.5, 0.8, 0.9, 0.95, 0.99] {
        let t_c = gap_confidence_offset(rate_query, rate_threshold, confidence).unwrap();
        let mut covered = 0usize;
        let mut certified = 0usize;
        let mut answered = 0usize;
        for run in 0..runs {
            let mut rng = derive_stream(17, run);
            if let Some((_, gap)) = m.run(&answers, &mut rng).gaps().first() {
                answered += 1;
                let lower = gap + threshold - t_c;
                if lower <= truth {
                    covered += 1;
                }
                if lower >= threshold {
                    certified += 1;
                }
            }
        }
        println!(
            "      {confidence:.2}   {t_c:10.1}              {:.3}               {:5.1}%",
            covered as f64 / answered as f64,
            100.0 * certified as f64 / answered as f64,
        );
    }
    println!(
        "\nthe empirical coverage matches the requested confidence — the bound is\n\
         calibrated, and it consumed zero additional privacy budget."
    );
}
