//! Adaptive-Sparse-Vector-with-Gap (Algorithm 2) versus classic SVT: more
//! answers from the same privacy budget.
//!
//! Finds items whose counts exceed a public threshold in a click-stream-like
//! dataset. Classic SVT pays a fixed per-answer budget; the adaptive
//! mechanism tests each query with extra-cheap noise first and only falls
//! back to the expensive test near the threshold — so queries far above the
//! threshold cost half as much.
//!
//! Run with: `cargo run --release --example adaptive_svt`

use free_gap::prelude::*;
use free_gap_noise::rng::derive_stream;

fn main() {
    let db = Dataset::Kosarak.generate_scaled(0.02, 3);
    let counts = db.item_counts();
    let answers = QueryAnswers::from_counts(counts.as_u64());

    let epsilon = 0.7;
    let k = 10; // budget sized for k baseline answers
                // Public threshold at the value of descending rank 5k.
    let threshold = counts.sorted_desc()[5 * k] as f64;
    let truly_above = counts.num_at_or_above(threshold);
    println!(
        "workload: {} queries; threshold T = {threshold} ({truly_above} truly above); ε = {epsilon}, k = {k}\n",
        answers.len()
    );

    let runs = 500;
    let mut svt_total = 0usize;
    let mut adaptive_total = 0usize;
    let mut top_total = 0usize;
    let mut remaining = 0.0;
    for run in 0..runs {
        let mut rng = derive_stream(41, run);
        let svt = ClassicSparseVector::new(k, epsilon, threshold, true).unwrap();
        let adaptive = AdaptiveSparseVector::new(k, epsilon, threshold, true).unwrap();
        let s = svt.run(&answers, &mut rng);
        let a = adaptive.run(&answers, &mut rng);
        svt_total += s.answered();
        adaptive_total += a.answered();
        top_total += a.answered_via(Branch::Top);
        remaining += a.remaining_fraction();
    }
    let rf = runs as f64;
    println!("average above-threshold answers over {runs} runs:");
    println!("  classic SVT            : {:6.2}", svt_total as f64 / rf);
    println!(
        "  Adaptive-SVT-with-Gap  : {:6.2}  ({:.0}% via the cheap top branch)",
        adaptive_total as f64 / rf,
        100.0 * top_total as f64 / adaptive_total.max(1) as f64
    );
    println!(
        "  leftover budget (adaptive, unstopped): {:.1}%",
        100.0 * remaining / rf
    );

    // One run in detail: gaps + free 95% lower-confidence bounds (Lemma 5).
    let adaptive = AdaptiveSparseVector::new(k, epsilon, threshold, true).unwrap();
    let mut rng = rng_from_seed(5);
    let out = adaptive.run(&answers, &mut rng);
    println!(
        "\none run: answered {} queries; first five with certificates:",
        out.answered()
    );
    for (idx, gap) in out.gaps().into_iter().take(5) {
        // Branch budgets: this demo conservatively uses the middle branch's
        // (larger-noise) rates for the certificate.
        let t95 = gap_confidence_offset(adaptive.epsilon2(), adaptive.epsilon0(), 0.95).unwrap();
        println!(
            "  item {idx:>5}: estimate {est:9.1}, true {truth:>6}, 95% lower bound {lb:9.1}",
            est = gap + threshold,
            truth = counts.count(idx),
            lb = gap + threshold - t95,
        );
    }
}
