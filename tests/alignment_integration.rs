//! Integration tests: the paper's privacy proofs, executed.
//!
//! Every mechanism's local alignment (Lemma 2 for Noisy-Top-K-with-Gap,
//! Lemma 4 for Adaptive-SVT, the classic SVT alignment, Example 1 for the
//! Laplace mechanism) is checked against *database-derived* adjacent
//! workloads — not just synthetic perturbations — closing the loop from
//! transaction-level adjacency to the Definition-6 cost bound.

use free_gap::alignment::checker::check_alignment_many;
use free_gap::alignment::{check_alignment, AdjacencyModel, Perturbation};
use free_gap::prelude::*;
use free_gap_noise::rng::rng_from_seed;
use proptest::prelude::*;

/// Builds a real pair of adjacent workloads by removing one transaction.
fn adjacent_from_dataset(seed: u64) -> (QueryAnswers, QueryAnswers) {
    let db = Dataset::T40I10D100K.generate_scaled(0.002, seed);
    let neighbor = db.neighbor_without(seed as usize % db.num_records());
    (
        QueryAnswers::from_counts(db.item_counts().as_u64()),
        QueryAnswers::from_counts(neighbor.item_counts().as_u64()),
    )
}

#[test]
fn topk_alignment_on_database_adjacency() {
    let mut rng = rng_from_seed(1);
    for seed in 0..10u64 {
        let (d, dp) = adjacent_from_dataset(seed);
        let mech = NoisyTopKWithGap::new(5, 0.7, true).unwrap();
        let max = check_alignment_many(&mech, &d, &dp, 30, &mut rng)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(max <= 0.7 + 1e-9);
        // and the reverse direction (neighbor as the base)
        let max = check_alignment_many(&mech, &dp, &d, 30, &mut rng).unwrap();
        assert!(max <= 0.7 + 1e-9);
    }
}

#[test]
fn adaptive_svt_alignment_on_database_adjacency() {
    let mut rng = rng_from_seed(2);
    for seed in 0..10u64 {
        let (d, dp) = adjacent_from_dataset(seed);
        let sorted = {
            let mut v: Vec<f64> = d.values().to_vec();
            v.sort_by(|a, b| b.partial_cmp(a).unwrap());
            v
        };
        let mech = AdaptiveSparseVector::new(3, 0.7, sorted[12], true).unwrap();
        let max = check_alignment_many(&mech, &d, &dp, 30, &mut rng)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(max <= 0.7 + 1e-9);
    }
}

#[test]
fn classic_svt_and_gap_svt_alignments_on_database_adjacency() {
    let mut rng = rng_from_seed(3);
    for seed in 0..8u64 {
        let (d, dp) = adjacent_from_dataset(seed);
        let threshold = {
            let mut v: Vec<f64> = d.values().to_vec();
            v.sort_by(|a, b| b.partial_cmp(a).unwrap());
            v[10]
        };
        let classic = ClassicSparseVector::new(3, 0.9, threshold, true).unwrap();
        assert!(check_alignment_many(&classic, &d, &dp, 25, &mut rng).unwrap() <= 0.9 + 1e-9);
        let gap = SparseVectorWithGap::new(3, 0.9, threshold, true).unwrap();
        assert!(check_alignment_many(&gap, &d, &dp, 25, &mut rng).unwrap() <= 0.9 + 1e-9);
    }
}

#[test]
fn laplace_mechanism_alignment_on_database_adjacency() {
    let mut rng = rng_from_seed(4);
    let (d, dp) = adjacent_from_dataset(5);
    // Vector Laplace with the budget split across all n queries: the
    // alignment cost equals (Σ|δ|/n)·ε <= ε.
    let mech = LaplaceMechanism::new(0.5).unwrap();
    let max = check_alignment_many(&mech, &d, &dp, 20, &mut rng).unwrap();
    assert!(max <= 0.5 + 1e-9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn adaptive_svt_alignment_random_workloads(
        values in proptest::collection::vec(0.0f64..200.0, 5..16),
        k in 1usize..4,
        threshold in 0.0f64..200.0,
        monotone_up in proptest::bool::ANY,
        seed in 0u64..100_000,
    ) {
        let answers = QueryAnswers::counting(values);
        let mech = AdaptiveSparseVector::new(k, 0.8, threshold, true).unwrap();
        let mut rng = rng_from_seed(seed);
        let model = if monotone_up { AdjacencyModel::MonotoneUp } else { AdjacencyModel::MonotoneDown };
        let p = Perturbation::random(model, answers.len(), &mut rng);
        let neighbor = answers.perturbed(p.deltas());
        let result = check_alignment(&mech, &answers, &neighbor, &mut rng);
        prop_assert!(result.is_ok(), "{:?}", result.err().map(|e| e.to_string()));
    }

    #[test]
    fn classic_svt_alignment_random_general_workloads(
        values in proptest::collection::vec(0.0f64..200.0, 5..16),
        k in 1usize..4,
        threshold in 0.0f64..200.0,
        seed in 0u64..100_000,
    ) {
        let answers = QueryAnswers::general(values);
        let mech = ClassicSparseVector::new(k, 0.8, threshold, false).unwrap();
        let mut rng = rng_from_seed(seed);
        let p = Perturbation::random(AdjacencyModel::General, answers.len(), &mut rng);
        let neighbor = answers.perturbed(p.deltas());
        let result = check_alignment(&mech, &answers, &neighbor, &mut rng);
        prop_assert!(result.is_ok(), "{:?}", result.err().map(|e| e.to_string()));
    }

    #[test]
    fn gap_svt_alignment_random_workloads(
        values in proptest::collection::vec(0.0f64..200.0, 5..16),
        threshold in 0.0f64..200.0,
        seed in 0u64..100_000,
    ) {
        let answers = QueryAnswers::counting(values);
        let mech = SparseVectorWithGap::new(2, 0.8, threshold, true).unwrap();
        let mut rng = rng_from_seed(seed);
        let p = Perturbation::random(AdjacencyModel::MonotoneUp, answers.len(), &mut rng);
        let neighbor = answers.perturbed(p.deltas());
        let result = check_alignment(&mech, &answers, &neighbor, &mut rng);
        prop_assert!(result.is_ok(), "{:?}", result.err().map(|e| e.to_string()));
    }
}
