//! Integration tests: every experiment in the harness runs end-to-end at a
//! reduced scale and produces tables of the expected shape.

use free_gap_bench::experiments::fig1::Panel;
use free_gap_bench::experiments::{self, epsilon_grid, k_grid};
use free_gap_bench::ExperimentConfig;
use free_gap_data::Dataset;

fn tiny() -> ExperimentConfig {
    ExperimentConfig {
        runs: 40,
        scale: 0.005,
        seed: 99,
        epsilon: 0.7,
    }
}

#[test]
fn grids_cover_the_paper_axes() {
    assert!(k_grid().contains(&10));
    assert!(epsilon_grid().iter().any(|e| (e - 0.7).abs() < 1e-9));
}

#[test]
fn datasets_table_smoke() {
    let t = experiments::datasets::run(&tiny());
    assert_eq!(t.rows.len(), 3);
    assert!(t.to_csv().contains("BMS-POS"));
    assert!(t.to_aligned().contains("kosarak"));
}

#[test]
fn fig1_both_panels_smoke() {
    for panel in [Panel::Svt, Panel::TopK] {
        let t = experiments::fig1::run(&tiny(), panel, Dataset::BmsPos, &[2, 6]);
        assert_eq!(t.rows.len(), 2);
        assert_eq!(t.columns.len(), 4);
        // Theory column is positive and under 50%.
        for row in &t.rows {
            let theory: f64 = row[2].to_string().parse().unwrap();
            assert!(theory > 0.0 && theory < 50.0, "{theory}");
        }
    }
}

#[test]
fn fig2_smoke() {
    let t = experiments::fig2::run(&tiny(), Panel::TopK, Dataset::T40I10D100K, 5, &[0.5, 1.0]);
    assert_eq!(t.rows.len(), 2);
}

#[test]
fn fig3_smoke_all_datasets() {
    for ds in Dataset::ALL {
        let t = experiments::fig3::run(&tiny(), ds, &[4]);
        assert_eq!(t.rows.len(), 1, "{}", ds.name());
        let svt: f64 = t.rows[0][1].to_string().parse().unwrap();
        let adaptive: f64 = t.rows[0][2].to_string().parse().unwrap();
        assert!(svt <= 4.0 + 1e-9);
        assert!(
            adaptive >= svt,
            "{}: adaptive {adaptive} vs svt {svt}",
            ds.name()
        );
    }
}

#[test]
fn fig4_smoke() {
    let t = experiments::fig4::run(&tiny(), &[Dataset::T40I10D100K], &[4, 8]);
    assert_eq!(t.rows.len(), 2);
    for row in &t.rows {
        let remaining: f64 = row[2].to_string().parse().unwrap();
        assert!((0.0..=100.0).contains(&remaining));
    }
}

#[test]
fn ablations_smoke() {
    let t = experiments::ablations::theta_sweep(&tiny(), 4, &[0.3]);
    assert_eq!(t.rows.len(), 1);
    let t = experiments::ablations::sigma_sweep(&tiny(), 4, &[2.0]);
    assert_eq!(t.rows.len(), 1);
    let t = experiments::ablations::split_sweep(&tiny(), Dataset::T40I10D100K, 4, &[0.5]);
    assert_eq!(t.rows.len(), 1);
}
