//! Integration tests: full dataset → mechanism → postprocessing workflows
//! through the facade crate, spanning all member crates.

use free_gap::prelude::*;
use free_gap_noise::rng::derive_stream;

/// Shared small workload: a scaled T40 dataset's counting queries.
fn workload() -> (ItemCounts, QueryAnswers) {
    let db = Dataset::T40I10D100K.generate_scaled(0.02, 1234);
    let counts = db.item_counts();
    let answers = QueryAnswers::from_counts(counts.as_u64());
    (counts, answers)
}

#[test]
fn dataset_to_topk_selection_finds_heavy_items() {
    let (counts, answers) = workload();
    let truth = counts.top_k_indices(5);
    let mech = NoisyTopKWithGap::new(5, 5.0, true).unwrap();
    let mut rng = rng_from_seed(1);
    let mut hits = 0usize;
    let runs = 200;
    for _ in 0..runs {
        let got = mech.run(&answers, &mut rng);
        let q = selection_quality(&got.unwrap().indices(), &truth);
        if q.recall > 0.79 {
            hits += 1;
        }
    }
    assert!(
        hits > runs / 2,
        "top-k recall was rarely high: {hits}/{runs}"
    );
}

#[test]
fn full_select_measure_blue_workflow_improves_mse() {
    let (_, answers) = workload();
    let k = 8;
    let mut sse_base = 0.0;
    let mut sse_blue = 0.0;
    for run in 0..1_500u64 {
        let mut rng = derive_stream(77, run);
        let r = topk_select_measure(&answers, k, 0.7, &mut rng).unwrap();
        for i in 0..k {
            sse_base += (r.measurements[i] - r.truths[i]).powi(2);
            sse_blue += (r.blue[i] - r.truths[i]).powi(2);
        }
    }
    let improvement = mse_improvement_percent(sse_base, sse_blue);
    let theory = 100.0 * (1.0 - blue_variance_ratio(k, 1.0));
    assert!(
        (improvement - theory).abs() < 6.0,
        "improvement {improvement}% vs theory {theory}%"
    );
}

#[test]
fn full_svt_workflow_matches_section_6_2() {
    let (counts, answers) = workload();
    let k = 6;
    let threshold = counts.sorted_desc()[4 * k] as f64;
    let mut sse_base = 0.0;
    let mut sse_comb = 0.0;
    for run in 0..1_500u64 {
        let mut rng = derive_stream(78, run);
        let r = svt_select_measure(&answers, k, 0.7, threshold, &mut rng).unwrap();
        for i in 0..r.indices.len() {
            sse_base += (r.measurements[i] - r.truths[i]).powi(2);
            sse_comb += (r.combined[i] - r.truths[i]).powi(2);
        }
    }
    let ratio = sse_comb / sse_base;
    let theory = svt_error_ratio(k, true);
    assert!(
        (ratio - theory).abs() < 0.06,
        "ratio {ratio} vs theory {theory}"
    );
}

#[test]
fn adaptive_svt_beats_classic_on_real_workload() {
    let (counts, answers) = workload();
    let k = 10;
    let threshold = counts.sorted_desc()[5 * k] as f64;
    let classic = ClassicSparseVector::new(k, 0.7, threshold, true).unwrap();
    let adaptive = AdaptiveSparseVector::new(k, 0.7, threshold, true).unwrap();
    let mut classic_total = 0usize;
    let mut adaptive_total = 0usize;
    for run in 0..300u64 {
        let mut rng = derive_stream(79, run);
        classic_total += classic.run(&answers, &mut rng).answered();
        adaptive_total += adaptive.run(&answers, &mut rng).answered();
    }
    assert!(
        adaptive_total as f64 > 1.5 * classic_total as f64,
        "adaptive {adaptive_total} vs classic {classic_total}"
    );
}

#[test]
fn budget_accountant_tracks_pipeline_spend() {
    let mut budget = PrivacyBudget::new(1.0).unwrap();
    let (_, answers) = workload();
    // Select with half, measure with half, as the pipelines do.
    let shares = budget.split(&[0.5, 0.5]).unwrap();
    let selector = NoisyTopKWithGap::new(3, shares[0], true).unwrap();
    let mut rng = rng_from_seed(2);
    let out = selector.run(&answers, &mut rng);
    budget.spend(shares[0]).unwrap();
    let measurer = LaplaceMechanism::new(shares[1]).unwrap();
    let out = out.unwrap();
    let truths: Vec<f64> = out.indices().iter().map(|&i| answers.values()[i]).collect();
    let _ = measurer.run(&truths, &mut rng);
    budget.spend(shares[1]).unwrap();
    assert!(budget.remaining() < 1e-9);
    assert!(budget.spend(0.01).is_err());
}

#[test]
fn exponential_mechanism_agrees_with_noisy_max_on_easy_instances() {
    // Both selection baselines should find the dominant item w.h.p.
    let answers = QueryAnswers::counting(vec![500.0, 10.0, 20.0, 30.0]);
    let expo = ExponentialMechanism::new(1.0, true).unwrap();
    let nmax = ClassicNoisyMax::new(1.0, true).unwrap();
    let mut rng = rng_from_seed(3);
    let mut expo_hits = 0;
    let mut nmax_hits = 0;
    for _ in 0..500 {
        if expo.run(&answers, &mut rng).unwrap() == 0 {
            expo_hits += 1;
        }
        if nmax.run(&answers, &mut rng).unwrap() == 0 {
            nmax_hits += 1;
        }
    }
    assert!(expo_hits > 480, "exponential mechanism hits {expo_hits}");
    assert!(nmax_hits > 480, "noisy max hits {nmax_hits}");
}

#[test]
fn multi_branch_ladder_dominates_algorithm2_on_real_workload() {
    // The §6.1 extension through the facade: on a rank-thresholded dataset
    // workload, 3 branches answer at least as many as Algorithm 2 (m = 2),
    // which answers more than SVT-with-Gap (m = 1).
    let (counts, answers) = workload();
    let k = 8;
    let threshold = counts.sorted_desc()[4 * k] as f64;
    let mut totals = [0usize; 3];
    for run in 0..200u64 {
        let mut rng = derive_stream(501, run);
        for (i, m) in [1usize, 2, 3].into_iter().enumerate() {
            let mech = MultiBranchAdaptiveSparseVector::new(k, 0.7, threshold, true, m).unwrap();
            totals[i] += mech.run(&answers, &mut rng).answered();
        }
    }
    assert!(
        totals[1] > totals[0],
        "m=2 {} vs m=1 {}",
        totals[1],
        totals[0]
    );
    assert!(
        totals[2] >= totals[1],
        "m=3 {} vs m=2 {}",
        totals[2],
        totals[1]
    );
}

#[test]
fn discrete_topk_tracks_continuous_on_integer_counts() {
    // Facade-level check of the §5.1 finite-precision variant: selection
    // quality on real integer counts matches the continuous mechanism.
    let (counts, answers) = workload();
    let truth = counts.top_k_indices(5);
    let disc = DiscreteNoisyTopKWithGap::new(5, 2.0, true).unwrap();
    let cont = NoisyTopKWithGap::new(5, 2.0, true).unwrap();
    let mut rng = rng_from_seed(7);
    let mut d_recall = 0.0;
    let mut c_recall = 0.0;
    let runs = 300;
    for _ in 0..runs {
        d_recall +=
            selection_quality(&disc.run(&answers, &mut rng).unwrap().indices(), &truth).recall;
        c_recall +=
            selection_quality(&cont.run(&answers, &mut rng).unwrap().indices(), &truth).recall;
    }
    assert!(
        (d_recall - c_recall).abs() / (runs as f64) < 0.05,
        "recall gap: discrete {d_recall} vs continuous {c_recall}"
    );
    // And its δ ledger is available for the workload size.
    assert!(disc.delta(answers.len()).is_finite());
}

#[test]
fn transaction_adjacency_induces_monotone_unit_perturbations() {
    // The data-layer adjacency (remove one record) must induce exactly the
    // query-layer adjacency the mechanisms assume.
    let db = Dataset::BmsPos.generate_scaled(0.0005, 9);
    let counts = db.item_counts();
    for idx in [0usize, 57, 200] {
        let neighbor = db.neighbor_without(idx % db.num_records());
        let ncounts = neighbor.item_counts();
        let mut deltas = Vec::new();
        for i in 0..counts.len() {
            deltas.push(ncounts.as_u64()[i] as f64 - counts.as_u64()[i] as f64);
        }
        assert!(deltas.iter().all(|&d| (-1.0..=0.0).contains(&d)));
        assert!(deltas.iter().any(|&d| d == -1.0), "some count must drop");
    }
}
