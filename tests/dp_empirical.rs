//! Integration tests: black-box empirical privacy audits.
//!
//! Complementary to the alignment checks: these treat each mechanism as a
//! black box over a tiny workload, estimate output distributions on a pair
//! of adjacent inputs, and verify the max log-ratio stays within the
//! claimed ε (plus sampling slack). Gaps are discretized onto a coarse grid
//! so the output space is finite.

use free_gap::alignment::empirical::empirical_epsilon;
use free_gap::prelude::*;
use free_gap_noise::rng::rng_from_seed;
use rand::rngs::StdRng;

const TRIALS: usize = 60_000;
const MIN_COUNT: usize = 200;

/// Sampling slack on ε̂: with ≥ MIN_COUNT observations per cell the ratio
/// estimate is within ~2/√200 ≈ 0.15 at 2σ.
const SLACK: f64 = 0.2;

#[test]
fn noisy_max_with_gap_epsilon_hat() {
    // Output: (argmax index, gap rounded to a coarse grid). The paper's
    // claim is ε-DP for the *joint* release. Mixed-direction deltas require
    // the general (non-monotone) mechanism configuration.
    let eps = 1.0;
    let mech = NoisyMaxWithGap::new(eps, false).unwrap();
    let run = |answers: &[f64], rng: &mut StdRng| {
        let (idx, gap) = mech
            .run(&QueryAnswers::general(answers.to_vec()), rng)
            .unwrap();
        (idx, (gap / 4.0).floor().min(6.0) as i64)
    };
    let d = vec![3.0, 2.0, 0.0];
    let dp = vec![2.0, 3.0, 1.0]; // mixed directions, each |δ| <= 1
    let mut rng = rng_from_seed(1);
    let audit = empirical_epsilon(run, &d, &dp, TRIALS, MIN_COUNT, &mut rng);
    assert!(
        audit.epsilon_hat <= eps + SLACK,
        "ε̂ = {} (witness {})",
        audit.epsilon_hat,
        audit.witness
    );
}

#[test]
fn monotone_configuration_under_non_monotone_adjacency_is_flagged() {
    // The monotone configuration halves the noise (Theorem 2's tighter
    // analysis) and is only valid for monotone workloads. Feeding it
    // mixed-direction adjacent inputs breaks the assumption, and the audit
    // observes a loss near 2ε — exactly the factor the skipped analysis
    // would have paid. This is the audit catching a *workload-assumption*
    // violation, not a mechanism bug.
    let eps = 1.0;
    let mech = NoisyMaxWithGap::new(eps, true).unwrap();
    let run = |answers: &[f64], rng: &mut StdRng| {
        let (idx, gap) = mech
            .run(&QueryAnswers::counting(answers.to_vec()), rng)
            .unwrap();
        (idx, (gap / 4.0).floor().min(6.0) as i64)
    };
    let d = vec![3.0, 2.0, 0.0];
    let dp = vec![2.0, 3.0, 1.0]; // NOT monotone
    let mut rng = rng_from_seed(6);
    let audit = empirical_epsilon(run, &d, &dp, TRIALS, MIN_COUNT, &mut rng);
    assert!(
        audit.epsilon_hat > eps + SLACK,
        "expected a flagged violation, got ε̂ = {}",
        audit.epsilon_hat
    );
    assert!(
        audit.epsilon_hat < 2.0 * eps + 2.0 * SLACK,
        "ε̂ = {}",
        audit.epsilon_hat
    );
}

#[test]
fn monotone_noisy_max_consumes_half_budget() {
    // Theorem 2: with monotone (all-up) adjacency, the mechanism configured
    // for ε is actually ε-DP with the *halved* noise — equivalently, the
    // observed loss at matched noise should stay within ε.
    let eps = 0.8;
    let mech = NoisyTopKWithGap::new(1, eps, true).unwrap();
    let run = |answers: &[f64], rng: &mut StdRng| {
        let out = mech
            .run(&QueryAnswers::counting(answers.to_vec()), rng)
            .unwrap();
        (
            out.items[0].index,
            (out.items[0].gap / 5.0).floor().min(5.0) as i64,
        )
    };
    let d = vec![4.0, 3.0, 1.0];
    let dp = vec![5.0, 4.0, 2.0]; // all +1: monotone adjacency
    let mut rng = rng_from_seed(2);
    let audit = empirical_epsilon(run, &d, &dp, TRIALS, MIN_COUNT, &mut rng);
    assert!(
        audit.epsilon_hat <= eps + SLACK,
        "ε̂ = {}",
        audit.epsilon_hat
    );
}

#[test]
fn adaptive_svt_epsilon_hat() {
    let eps = 0.7;
    let threshold = 5.0;
    let mech = AdaptiveSparseVector::new(2, eps, threshold, true).unwrap();
    let run = |answers: &[f64], rng: &mut StdRng| {
        let out = mech.run(&QueryAnswers::counting(answers.to_vec()), rng);
        // Discretize: per query, branch tag only (gap coarsened to sign).
        out.outcomes
            .iter()
            .map(|o| match o {
                free_gap::core::sparse_vector::AdaptiveOutcome::Below => 0u8,
                free_gap::core::sparse_vector::AdaptiveOutcome::Above { branch, .. } => {
                    match branch {
                        Branch::Top => 1,
                        Branch::Middle => 2,
                    }
                }
            })
            .collect::<Vec<u8>>()
    };
    let d = vec![6.0, 4.0, 5.0, 3.0];
    let dp = vec![5.0, 5.0, 4.0, 4.0];
    let mut rng = rng_from_seed(3);
    let audit = empirical_epsilon(run, &d, &dp, TRIALS, MIN_COUNT, &mut rng);
    assert!(
        audit.epsilon_hat <= eps + SLACK,
        "ε̂ = {} (witness {})",
        audit.epsilon_hat,
        audit.witness
    );
}

#[test]
fn classic_svt_epsilon_hat() {
    let eps = 0.9;
    let mech = ClassicSparseVector::new(1, eps, 4.0, true).unwrap();
    let run = |answers: &[f64], rng: &mut StdRng| {
        let out = mech.run(&QueryAnswers::counting(answers.to_vec()), rng);
        out.above.iter().map(|o| o.is_some()).collect::<Vec<bool>>()
    };
    let d = vec![5.0, 3.0, 4.0];
    let dp = vec![4.0, 4.0, 3.0];
    let mut rng = rng_from_seed(4);
    let audit = empirical_epsilon(run, &d, &dp, TRIALS, MIN_COUNT, &mut rng);
    assert!(
        audit.epsilon_hat <= eps + SLACK,
        "ε̂ = {}",
        audit.epsilon_hat
    );
}

#[test]
fn sanity_the_audit_catches_overconfident_budgets() {
    // Same mechanism, but we *claim* a quarter of the true budget. The
    // empirical loss must expose the gap — demonstrating the audit has
    // teeth at these trial counts.
    let true_eps = 2.0;
    let claimed = 0.5;
    let mech = NoisyTopKWithGap::new(1, true_eps, true).unwrap();
    let run = |answers: &[f64], rng: &mut StdRng| {
        mech.run(&QueryAnswers::counting(answers.to_vec()), rng)
            .unwrap()
            .items[0]
            .index
    };
    let d = vec![3.0, 2.0];
    let dp = vec![2.0, 3.0];
    let mut rng = rng_from_seed(5);
    let audit = empirical_epsilon(run, &d, &dp, TRIALS, MIN_COUNT, &mut rng);
    assert!(
        audit.epsilon_hat > claimed + SLACK,
        "audit failed to flag: ε̂ = {} vs claimed {claimed}",
        audit.epsilon_hat
    );
}
