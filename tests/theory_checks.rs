//! Integration tests: the paper's quantitative claims, end to end.
//!
//! Each test exercises a theorem/corollary through the *public facade API*
//! (not internal shortcuts), at the same operating points the paper quotes.

use free_gap::prelude::*;
use free_gap_noise::rng::derive_stream;
use free_gap_noise::stats::RunningMoments;
use free_gap_noise::ContinuousDistribution;

#[test]
fn theorem2_gap_variance_matches_16k2_over_eps2() {
    // §5.1: pairwise gap estimates have variance 16k²/ε² (general queries).
    let k = 3;
    let eps = 0.5;
    let answers = QueryAnswers::general(vec![900.0, 800.0, 700.0, 600.0, 0.0]);
    let mech = NoisyTopKWithGap::new(k, eps, false).unwrap();
    let mut gaps = RunningMoments::new();
    for run in 0..40_000u64 {
        let mut rng = derive_stream(1, run);
        let out = mech.run(&answers, &mut rng).unwrap();
        if out.indices() == vec![0, 1, 2] {
            // gap between ranks 1 and 2 — two noise terms only
            gaps.push(out.items[0].gap);
        }
    }
    let expect = 16.0 * (k * k) as f64 / (eps * eps);
    let rel = (gaps.variance() - expect).abs() / expect;
    assert!(
        rel < 0.05,
        "variance {} vs 16k²/ε² = {expect}",
        gaps.variance()
    );
    assert!(
        (pairwise_gap_variance(k, eps, false) - expect).abs() < 1e-9,
        "closed form disagrees"
    );
}

#[test]
fn corollary1_error_reduction_at_paper_operating_point() {
    // k = 25, counting queries: the paper quotes "(k-1)/2k … close to 50%".
    let reduction = 100.0 * (1.0 - blue_variance_ratio(25, 1.0));
    assert!((reduction - 48.0).abs() < 0.5, "reduction {reduction}");
}

#[test]
fn section62_limits() {
    // §6.2: improvement approaches 20% (general) and 50% (monotone).
    assert!((100.0 * (1.0 - svt_error_ratio(1_000_000, false)) - 20.0).abs() < 0.1);
    assert!((100.0 * (1.0 - svt_error_ratio(1_000_000, true)) - 50.0).abs() < 0.1);
}

#[test]
fn lemma5_tail_is_exact_for_both_rate_regimes() {
    for (rq, rt) in [(1.0, 1.0), (0.4, 2.0)] {
        let diff = LaplaceDiff::new(rq, rt).unwrap();
        let mut rng = rng_from_seed(9);
        for t in [0.0, 0.7, 2.5] {
            let n = 120_000;
            let hits = (0..n).filter(|_| diff.sample(&mut rng) >= -t).count() as f64;
            let p = diff.lower_tail(t);
            let sigma = (p * (1.0 - p) / n as f64).sqrt();
            assert!(
                (hits / n as f64 - p).abs() < 5.0 * sigma,
                "rates ({rq},{rt}), t = {t}"
            );
        }
    }
}

#[test]
fn appendix_a1_tie_bound_certifies_machine_epsilon_implementations() {
    // §5.1 implementation-issues: with γ = 2⁻⁵² and a million queries the
    // failure probability δ is negligible.
    let delta = free_gap::noise::tie::union_tie_bound(1_000_000, 1.0, 2f64.powi(-52)).unwrap();
    assert!(delta < 1e-3, "δ = {delta}");
    // …and with float32-like granularity it would NOT be: the bound warns.
    let delta32 = free_gap::noise::tie::union_tie_bound(1_000_000, 1.0, 2f64.powi(-23)).unwrap();
    assert!(
        delta32 > 0.1,
        "a coarse grid must look risky, got {delta32}"
    );
}

#[test]
fn adaptive_svt_answers_up_to_twice_k_far_from_threshold() {
    // §6.1: "if queries are very far from the threshold, our adaptive
    // version will be able to find twice as many of them".
    let k = 8;
    let answers = QueryAnswers::counting(vec![1e9; 64]);
    let mech = AdaptiveSparseVector::new(k, 0.7, 0.0, true).unwrap();
    let mut rng = rng_from_seed(12);
    let out = mech.run(&answers, &mut rng);
    assert!(
        out.answered() >= 2 * k - 2,
        "answered {} with k = {k}",
        out.answered()
    );
}

#[test]
fn gap_plus_threshold_is_consistent_estimator() {
    // §6.2: gap + T estimates q(D); at growing ε the estimate concentrates.
    let truth = 750.0;
    let answers = QueryAnswers::counting(vec![truth]);
    let spread = |eps: f64| {
        let m = SparseVectorWithGap::new(1, eps, 500.0, true).unwrap();
        let mut moments = RunningMoments::new();
        for run in 0..5_000u64 {
            let mut rng = derive_stream(13, run);
            if let Some((_, g)) = m.run(&answers, &mut rng).gaps().first() {
                moments.push(g + 500.0 - truth);
            }
        }
        moments.variance()
    };
    let wide = spread(0.2);
    let tight = spread(2.0);
    assert!(
        tight < wide / 50.0,
        "variance did not shrink: {tight} vs {wide}"
    );
}
